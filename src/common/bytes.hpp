// Byte-level serialization used for network messages and commitment
// hashing.  Little-endian, length-prefixed containers; readers throw
// SerializationError on truncated input rather than reading past the
// end.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace trustddl {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values and containers to a byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;

  void write_u8(std::uint8_t value) { buffer_.push_back(value); }

  void write_u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  void write_u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  void write_i64(std::int64_t value) {
    write_u64(static_cast<std::uint64_t>(value));
  }

  void write_double(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    write_u64(bits);
  }

  void write_bytes(const Bytes& data) {
    write_u64(data.size());
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  void write_string(const std::string& text) {
    write_u64(text.size());
    buffer_.insert(buffer_.end(), text.begin(), text.end());
  }

  void write_u64_vector(const std::vector<std::uint64_t>& values) {
    write_u64(values.size());
    write_u64_span(values.data(), values.size());
  }

  /// Bulk little-endian append of `count` 64-bit words (fast path for
  /// tensor payloads).
  void write_u64_span(const std::uint64_t* values, std::size_t count) {
    if constexpr (std::endian::native == std::endian::little) {
      const std::size_t old_size = buffer_.size();
      buffer_.resize(old_size + count * 8);
      std::memcpy(buffer_.data() + old_size, values, count * 8);
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        write_u64(values[i]);
      }
    }
  }

  /// Raw append without a length prefix (for fixed-size digests).
  void write_raw(const std::uint8_t* data, std::size_t size) {
    buffer_.insert(buffer_.end(), data, data + size);
  }

  const Bytes& bytes() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

/// Reads primitives back out of a byte vector; throws on truncation.
/// Borrows lvalue buffers and takes ownership of rvalues, so passing
/// the temporary returned by a receive call is safe.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}
  explicit ByteReader(Bytes&& data)
      : owned_(std::move(data)), data_(owned_) {}

  ByteReader(const ByteReader&) = delete;
  ByteReader& operator=(const ByteReader&) = delete;

  std::uint8_t read_u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint32_t read_u32() {
    require(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return value;
  }

  std::uint64_t read_u64() {
    require(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return value;
  }

  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }

  double read_double() {
    const std::uint64_t bits = read_u64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  Bytes read_bytes() {
    const std::uint64_t size = read_u64();
    require(size);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + size));
    pos_ += size;
    return out;
  }

  std::string read_string() {
    const std::uint64_t size = read_u64();
    require(size);
    std::string out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                    data_.begin() + static_cast<std::ptrdiff_t>(pos_ + size));
    pos_ += size;
    return out;
  }

  std::vector<std::uint64_t> read_u64_vector() {
    const std::uint64_t count = read_u64();
    if (count > remaining() / 8) {  // reject before allocating
      throw SerializationError("u64 vector length exceeds payload");
    }
    std::vector<std::uint64_t> out(count);
    read_u64_span(out.data(), count);
    return out;
  }

  /// Bulk little-endian read of `count` 64-bit words.
  void read_u64_span(std::uint64_t* values, std::size_t count) {
    if (count > remaining() / 8) {
      throw SerializationError("u64 span length exceeds payload");
    }
    require(count * 8);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(values, data_.data() + pos_, count * 8);
      pos_ += count * 8;
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        values[i] = read_u64();
      }
    }
  }

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void require(std::uint64_t count) const {
    // Subtraction form avoids overflow when a hostile length prefix is
    // near 2^64.
    if (count > data_.size() - pos_) {
      throw SerializationError("truncated message: need " +
                               std::to_string(count) + " bytes, have " +
                               std::to_string(data_.size() - pos_));
    }
  }

  Bytes owned_;  // storage when constructed from an rvalue
  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace trustddl
