#include "common/rng.hpp"

#include <cmath>

namespace trustddl {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands one seed into the four xoshiro words.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
  std::uint64_t value = next_u64();
  while (value >= limit) {
    value = next_u64();
  }
  return value % bound;
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 1e-300) {
    u1 = next_double();
  }
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::next_gaussian(double mean, double stddev) {
  return mean + stddev * next_gaussian();
}

void Rng::fill_u64(std::vector<std::uint64_t>& out) {
  for (auto& value : out) {
    value = next_u64();
  }
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace trustddl
