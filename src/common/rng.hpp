// Deterministic pseudo-random number generation.
//
// Every randomized component (share creation, Beaver dealing, weight
// init, data synthesis, adversaries) takes an explicit `Rng&` so runs
// are reproducible from a single seed.  The generator is xoshiro256**;
// it is NOT cryptographically secure — this repository reproduces the
// systems behaviour of TrustDDL, and a deployment would substitute a
// CSPRNG behind the same interface.
#pragma once

#include <cstdint>
#include <vector>

namespace trustddl {

/// xoshiro256** pseudo-random generator with explicit seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias for small bounds.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Standard normal via Box-Muller.
  double next_gaussian();

  /// Normal with the given mean and standard deviation.
  double next_gaussian(double mean, double stddev);

  /// Fill `out` with uniform 64-bit values.
  void fill_u64(std::vector<std::uint64_t>& out);

  /// Derive an independent child generator (for per-party streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace trustddl
