// SHA-256 (FIPS 180-4), used for the commitment phase of the
// Byzantine-tolerant protocols (paper §III-B: parties commit to the
// hash of their shares before exchanging them).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace trustddl {

/// A 256-bit digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  /// Absorb `size` bytes.
  void update(const std::uint8_t* data, std::size_t size);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(const std::string& text) {
    update(reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  }

  /// Finish and return the digest.  The hasher must not be reused.
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(const Bytes& data);
  static Sha256Digest hash(const std::string& text);

  /// Hex string of a digest (for logging and test vectors).
  static std::string hex(const Sha256Digest& digest);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace trustddl
