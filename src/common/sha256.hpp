// SHA-256 (FIPS 180-4), used for the commitment phase of the
// Byzantine-tolerant protocols (paper §III-B: parties commit to the
// hash of their shares before exchanging them).
//
// Two accelerated paths sit behind the portable compressor, selected
// at runtime via numeric/simd.hpp (TRUSTDDL_SIMD=scalar disables
// both):
//  * single-stream: the x86 SHA extensions (sha256rnds2/msg1/msg2)
//    when the CPU has them — used by Sha256::update's bulk-block fast
//    path;
//  * multi-stream: a 4-lane SSE2 compressor that runs four
//    independent messages in lockstep, used by sha256_batch for the
//    per-component commitment digests of the robust opening.
// Every path produces byte-identical digests (asserted against NIST
// vectors and batch-vs-single differential tests).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace trustddl {

/// A 256-bit digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  /// Absorb `size` bytes.
  void update(const std::uint8_t* data, std::size_t size);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(const std::string& text) {
    update(reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  }

  /// Finish and return the digest.  The hasher must not be reused.
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(const Bytes& data);
  static Sha256Digest hash(const std::string& text);

  /// Hex string of a digest (for logging and test vectors).
  static std::string hex(const Sha256Digest& digest);

 private:
  void process_blocks(const std::uint8_t* data, std::size_t count);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

/// Hash `count` independent messages; digests[i] is byte-identical to
/// Sha256::hash(messages[i]).  On x86 with a non-scalar SIMD backend
/// the messages are compressed four at a time in lockstep (the common
/// full blocks run vectorized, ragged tails finish per lane), which is
/// how the robust opening hashes its three per-component commitment
/// streams in one pass.
void sha256_batch(const Bytes* messages, std::size_t count,
                  Sha256Digest* digests);
std::vector<Sha256Digest> sha256_batch(const std::vector<Bytes>& messages);

}  // namespace trustddl
