// Error handling primitives for TrustDDL.
//
// The library throws exceptions derived from `trustddl::Error` for
// conditions a caller can reasonably handle (protocol violations,
// timeouts, malformed inputs).  Internal invariant violations use
// TRUSTDDL_ASSERT and terminate: a broken invariant inside an MPC
// protocol must never silently continue.
#pragma once

#include <stdexcept>
#include <string>

namespace trustddl {

/// Base class for all TrustDDL exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid argument passed to a public API.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A network operation timed out (e.g. waiting for a share from a
/// party that dropped the message).
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// A protocol-level violation that the protocol cannot recover from
/// (e.g. more corrupted reconstructions than the fault model allows).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// Deserialization of a message failed (truncated or corrupt payload).
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace trustddl

/// Check an internal invariant; terminates on failure.
#define TRUSTDDL_ASSERT(expr)                                               \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::trustddl::detail::assert_fail(#expr, __FILE__, __LINE__, "");       \
    }                                                                       \
  } while (false)

/// Check an internal invariant with an explanatory message.
#define TRUSTDDL_ASSERT_MSG(expr, msg)                                      \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::trustddl::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                       \
  } while (false)

/// Validate a public-API argument; throws InvalidArgument on failure.
#define TRUSTDDL_REQUIRE(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      throw ::trustddl::InvalidArgument(msg);                               \
    }                                                                       \
  } while (false)
