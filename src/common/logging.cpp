#include "common/logging.hpp"

#include <cstdio>

namespace trustddl {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_)) {
    return;
  }
  std::string line = std::string("[") + level_name(level) + "] " + component +
                     ": " + message + "\n";
  if (capture_) {
    captured_ += line;
  } else {
    std::fputs(line.c_str(), stderr);
  }
}

void Logger::set_capture(bool capture) {
  std::lock_guard<std::mutex> lock(mu_);
  capture_ = capture;
}

std::string Logger::captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captured_;
}

void Logger::clear_captured() {
  std::lock_guard<std::mutex> lock(mu_);
  captured_.clear();
}

}  // namespace trustddl
