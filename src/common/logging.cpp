#include "common/logging.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace trustddl {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

thread_local int t_party = -1;

std::string iso8601_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t seconds = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, static_cast<int>(millis));
  return buffer;
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::recompute_min_level_locked() {
  int floor = static_cast<int>(level_);
  for (const auto& [component, level] : component_levels_) {
    floor = std::min(floor, static_cast<int>(level));
  }
  min_level_.store(floor, std::memory_order_relaxed);
}

void Logger::set_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  level_ = level;
  recompute_min_level_locked();
}

LogLevel Logger::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

void Logger::set_component_level(const std::string& component,
                                 LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  component_levels_[component] = level;
  recompute_min_level_locked();
}

void Logger::clear_component_levels() {
  std::lock_guard<std::mutex> lock(mu_);
  component_levels_.clear();
  recompute_min_level_locked();
}

LogLevel Logger::effective_level(const std::string& component) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = component_levels_.find(component);
  return it != component_levels_.end() ? it->second : level_;
}

void Logger::set_thread_party(int party) { t_party = party; }

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = component_levels_.find(component);
  const LogLevel effective =
      it != component_levels_.end() ? it->second : level_;
  if (static_cast<int>(level) < static_cast<int>(effective)) {
    return;
  }
  std::string line = iso8601_now();
  if (t_party >= 0) {
    line += " [p" + std::to_string(t_party) + "]";
  }
  line += std::string(" [") + level_name(level) + "] " + component + ": " +
          message + "\n";
  if (capture_) {
    if (capture_truncated_) {
      return;
    }
    if (captured_.size() + line.size() > kCaptureLimit) {
      captured_ += kTruncationMarker;
      capture_truncated_ = true;
      return;
    }
    captured_ += line;
  } else {
    std::fputs(line.c_str(), stderr);
  }
}

void Logger::set_capture(bool capture) {
  std::lock_guard<std::mutex> lock(mu_);
  capture_ = capture;
}

std::string Logger::captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captured_;
}

void Logger::clear_captured() {
  std::lock_guard<std::mutex> lock(mu_);
  captured_.clear();
  capture_truncated_ = false;
}

}  // namespace trustddl
