#include "common/sha256.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "numeric/simd.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TRUSTDDL_SHA_X86 1
#include <immintrin.h>
#endif

namespace trustddl {
namespace {

using State = std::array<std::uint32_t, 8>;

constexpr State kInitState = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                              0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

constexpr std::uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

inline std::uint32_t load_be32(const std::uint8_t* bytes) {
  return (static_cast<std::uint32_t>(bytes[0]) << 24) |
         (static_cast<std::uint32_t>(bytes[1]) << 16) |
         (static_cast<std::uint32_t>(bytes[2]) << 8) |
         static_cast<std::uint32_t>(bytes[3]);
}

/// The portable FIPS 180-4 compressor — the reference every
/// accelerated path must match byte for byte.
void compress_scalar(State& state, const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = load_be32(block + 4 * i);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

#if defined(TRUSTDDL_SHA_X86)

/// SHA-NI compressor: the hardware message-schedule/round engine
/// (sha256msg1/msg2/rnds2) with the standard ABEF/CDGH state packing.
/// Schedule bookkeeping: quad q consumes message words W[4q..4q+3];
/// the msg1 half of producing W-quad q+4 runs at quads [1, 12], the
/// alignr+msg2 half at quads [3, 14].
__attribute__((target("sha,ssse3,sse4.1"))) void compress_sha_ni(
    State& state, const std::uint8_t* data, std::size_t count) {
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bll, 0x0405060700010203ll);

  // Pack a,b,..,h into ABEF / CDGH vector order.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  for (std::size_t blk = 0; blk < count; ++blk, data += 64) {
    const __m128i save0 = state0;
    const __m128i save1 = state1;
    __m128i m[4];
    for (int q = 0; q < 16; ++q) {
      __m128i& m0 = m[q % 4];
      __m128i& m1 = m[(q + 1) % 4];
      __m128i& m3 = m[(q + 3) % 4];
      if (q < 4) {
        m0 = _mm_shuffle_epi8(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(data + 16 * q)),
            kByteSwap);
      }
      __m128i msg = _mm_add_epi32(
          m0, _mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(&kRoundConstants[4 * q])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      if (q >= 3 && q <= 14) {
        m1 = _mm_add_epi32(m1, _mm_alignr_epi8(m0, m3, 4));
        m1 = _mm_sha256msg2_epu32(m1, m0);
      }
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      if (q >= 1 && q <= 12) {
        m3 = _mm_sha256msg1_epu32(m3, m0);
      }
    }
    state0 = _mm_add_epi32(state0, save0);
    state1 = _mm_add_epi32(state1, save1);
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

bool sha_ni_enabled() {
  return simd::cpu_has_sha_ni() &&
         simd::active_backend() != simd::Backend::kScalar;
}

// --- 4-lane lockstep compressor (plain SSE2, x86-64 baseline) -------
//
// Lane l of every vector holds message l's value of that word: the 64
// rounds run once for four independent blocks.  Used while all lanes
// of a batch still have full blocks; ragged tails finish per lane.

inline __m128i rotr_epi32(__m128i x, int n) {
  return _mm_or_si128(_mm_srli_epi32(x, n), _mm_slli_epi32(x, 32 - n));
}

void compress_x4(__m128i state[8], const std::uint8_t* const blocks[4]) {
  __m128i w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = _mm_set_epi32(
        static_cast<int>(load_be32(blocks[3] + 4 * i)),
        static_cast<int>(load_be32(blocks[2] + 4 * i)),
        static_cast<int>(load_be32(blocks[1] + 4 * i)),
        static_cast<int>(load_be32(blocks[0] + 4 * i)));
  }
  for (int i = 16; i < 64; ++i) {
    const __m128i w15 = w[i - 15];
    const __m128i w2 = w[i - 2];
    const __m128i s0 = _mm_xor_si128(
        _mm_xor_si128(rotr_epi32(w15, 7), rotr_epi32(w15, 18)),
        _mm_srli_epi32(w15, 3));
    const __m128i s1 = _mm_xor_si128(
        _mm_xor_si128(rotr_epi32(w2, 17), rotr_epi32(w2, 19)),
        _mm_srli_epi32(w2, 10));
    w[i] = _mm_add_epi32(_mm_add_epi32(w[i - 16], s0),
                         _mm_add_epi32(w[i - 7], s1));
  }

  __m128i a = state[0], b = state[1], c = state[2], d = state[3];
  __m128i e = state[4], f = state[5], g = state[6], h = state[7];

  for (int i = 0; i < 64; ++i) {
    const __m128i s1 = _mm_xor_si128(
        _mm_xor_si128(rotr_epi32(e, 6), rotr_epi32(e, 11)),
        rotr_epi32(e, 25));
    const __m128i ch =
        _mm_xor_si128(_mm_and_si128(e, f), _mm_andnot_si128(e, g));
    const __m128i temp1 = _mm_add_epi32(
        _mm_add_epi32(_mm_add_epi32(h, s1), _mm_add_epi32(ch, w[i])),
        _mm_set1_epi32(static_cast<int>(kRoundConstants[i])));
    const __m128i s0 = _mm_xor_si128(
        _mm_xor_si128(rotr_epi32(a, 2), rotr_epi32(a, 13)),
        rotr_epi32(a, 22));
    const __m128i maj = _mm_xor_si128(
        _mm_xor_si128(_mm_and_si128(a, b), _mm_and_si128(a, c)),
        _mm_and_si128(b, c));
    const __m128i temp2 = _mm_add_epi32(s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm_add_epi32(d, temp1);
    d = c;
    c = b;
    b = a;
    a = _mm_add_epi32(temp1, temp2);
  }

  state[0] = _mm_add_epi32(state[0], a);
  state[1] = _mm_add_epi32(state[1], b);
  state[2] = _mm_add_epi32(state[2], c);
  state[3] = _mm_add_epi32(state[3], d);
  state[4] = _mm_add_epi32(state[4], e);
  state[5] = _mm_add_epi32(state[5], f);
  state[6] = _mm_add_epi32(state[6], g);
  state[7] = _mm_add_epi32(state[7], h);
}

#endif  // TRUSTDDL_SHA_X86

void compress_blocks(State& state, const std::uint8_t* data,
                     std::size_t count) {
#if defined(TRUSTDDL_SHA_X86)
  if (sha_ni_enabled()) {
    compress_sha_ni(state, data, count);
    return;
  }
#endif
  for (std::size_t i = 0; i < count; ++i) {
    compress_scalar(state, data + 64 * i);
  }
}

void store_digest(const State& state, Sha256Digest& digest) {
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
  }
}

/// Finish one message from mid-stream: `rest` are the bytes after the
/// blocks already compressed into `state`; `total_bytes` the full
/// message length.  Byte-identical to Sha256 update+finish.
Sha256Digest finish_from(State state, const std::uint8_t* rest,
                         std::size_t rest_size, std::uint64_t total_bytes) {
  const std::size_t full = rest_size / 64;
  compress_blocks(state, rest, full);
  rest += full * 64;
  rest_size -= full * 64;

  std::uint8_t pad[128] = {0};
  std::memcpy(pad, rest, rest_size);
  pad[rest_size] = 0x80;
  const std::size_t pad_blocks = rest_size < 56 ? 1 : 2;
  const std::uint64_t bit_length = total_bytes * 8;
  for (int i = 0; i < 8; ++i) {
    pad[pad_blocks * 64 - 8 + i] =
        static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  }
  compress_blocks(state, pad, pad_blocks);

  Sha256Digest digest;
  store_digest(state, digest);
  return digest;
}

#if defined(TRUSTDDL_SHA_X86)

/// Up to four messages in lockstep.  `digests[l]` may be null for
/// padding lanes (shorter final groups re-point spare lanes at the
/// first message and discard their output).
void sha256_batch4(const Bytes* const messages[4],
                   Sha256Digest* const digests[4]) {
  std::size_t min_blocks = messages[0]->size() / 64;
  for (int l = 1; l < 4; ++l) {
    min_blocks = std::min(min_blocks, messages[l]->size() / 64);
  }

  __m128i state[8];
  for (int j = 0; j < 8; ++j) {
    state[j] = _mm_set1_epi32(static_cast<int>(kInitState[j]));
  }
  const std::uint8_t* blocks[4];
  for (std::size_t b = 0; b < min_blocks; ++b) {
    for (int l = 0; l < 4; ++l) {
      blocks[l] = messages[l]->data() + 64 * b;
    }
    compress_x4(state, blocks);
  }

  alignas(16) std::uint32_t words[8][4];
  for (int j = 0; j < 8; ++j) {
    _mm_store_si128(reinterpret_cast<__m128i*>(words[j]), state[j]);
  }
  for (int l = 0; l < 4; ++l) {
    if (digests[l] == nullptr) {
      continue;
    }
    State lane_state;
    for (int j = 0; j < 8; ++j) {
      lane_state[j] = words[j][l];
    }
    *digests[l] = finish_from(lane_state, messages[l]->data() + 64 * min_blocks,
                              messages[l]->size() - 64 * min_blocks,
                              messages[l]->size());
  }
}

#endif  // TRUSTDDL_SHA_X86

}  // namespace

Sha256::Sha256() : state_(kInitState) {}

void Sha256::process_blocks(const std::uint8_t* data, std::size_t count) {
  compress_blocks(state_, data, count);
}

void Sha256::update(const std::uint8_t* data, std::size_t size) {
  TRUSTDDL_ASSERT_MSG(!finished_, "Sha256 reused after finish()");
  total_bytes_ += size;
  if (buffered_ > 0) {
    const std::size_t take = std::min(size, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data, take);
    buffered_ += take;
    data += take;
    size -= take;
    if (buffered_ == buffer_.size()) {
      process_blocks(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  // Bulk fast path: full blocks compress straight from the caller's
  // buffer (one SHA-NI sweep when available) instead of staging each
  // through the 64-byte buffer.
  if (size >= buffer_.size()) {
    const std::size_t blocks = size / buffer_.size();
    process_blocks(data, blocks);
    data += blocks * buffer_.size();
    size -= blocks * buffer_.size();
  }
  if (size > 0) {
    std::memcpy(buffer_.data(), data, size);
    buffered_ = size;
  }
}

Sha256Digest Sha256::finish() {
  TRUSTDDL_ASSERT_MSG(!finished_, "Sha256 reused after finish()");
  finished_ = true;

  const std::uint64_t bit_length = total_bytes_ * 8;
  // Append 0x80 then zero padding so that length ≡ 56 (mod 64).
  std::uint8_t pad = 0x80;
  finished_ = false;  // allow the padding updates below
  update(&pad, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(&zero, 1);
  }
  finished_ = true;

  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  }
  std::memcpy(buffer_.data() + 56, length_bytes, 8);
  process_blocks(buffer_.data(), 1);

  Sha256Digest digest;
  store_digest(state_, digest);
  return digest;
}

Sha256Digest Sha256::hash(const Bytes& data) {
  Sha256 hasher;
  hasher.update(data);
  return hasher.finish();
}

Sha256Digest Sha256::hash(const std::string& text) {
  Sha256 hasher;
  hasher.update(text);
  return hasher.finish();
}

std::string Sha256::hex(const Sha256Digest& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0f]);
  }
  return out;
}

void sha256_batch(const Bytes* messages, std::size_t count,
                  Sha256Digest* digests) {
#if defined(TRUSTDDL_SHA_X86)
  // The 4-lane path needs >= 2 real messages to beat single-stream
  // (which may itself be SHA-NI); spare lanes in a final short group
  // re-hash messages[i] with their output discarded.
  if (simd::active_backend() == simd::Backend::kAvx2) {
    std::size_t i = 0;
    while (count - i >= 2) {
      const std::size_t lanes = std::min<std::size_t>(4, count - i);
      const Bytes* lane_messages[4];
      Sha256Digest* lane_digests[4];
      for (std::size_t l = 0; l < 4; ++l) {
        lane_messages[l] = l < lanes ? &messages[i + l] : &messages[i];
        lane_digests[l] = l < lanes ? &digests[i + l] : nullptr;
      }
      sha256_batch4(lane_messages, lane_digests);
      i += lanes;
    }
    for (; i < count; ++i) {
      digests[i] = Sha256::hash(messages[i]);
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < count; ++i) {
    digests[i] = Sha256::hash(messages[i]);
  }
}

std::vector<Sha256Digest> sha256_batch(const std::vector<Bytes>& messages) {
  std::vector<Sha256Digest> digests(messages.size());
  sha256_batch(messages.data(), messages.size(), digests.data());
  return digests;
}

}  // namespace trustddl
