// Client library for the secure inference serving layer.
//
// A client never sees the model and no single party ever sees the
// query: submit() secret-shares the input rows (mpc::share_secret, the
// paper's CreateShares) and fans one triple out to each computing
// party, then notifies the model owner for admission.  await() polls
// for the parties' result-share triples and robustly reconstructs the
// class probabilities as soon as ANY TWO of the three have arrived
// (after a short straggler grace once the second share lands) — the
// replicated 2-of-3 sharing means a crashed party cannot block the
// answer, and majority checking across the replicated share sets means
// a Byzantine party returning corrupted shares is out-voted
// (mpc::robust_reconstruct), extending guaranteed output delivery to
// the serving edge.
//
// infer() adds the retry loop: a kRejected verdict (bounded-queue
// backpressure) is retried with exponential backoff under a fresh seq;
// deadline misses are surfaced to the caller.
//
// Thread safety: one InferenceClient may be driven by many threads
// concurrently — seq assignment and the sharing RNG are mutex-guarded;
// everything else is per-seq tag traffic.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "numeric/fixed_point.hpp"
#include "numeric/tensor.hpp"
#include "serve/wire.hpp"

namespace trustddl::serve {

struct ClientOptions {
  int frac_bits = fx::kDefaultFracBits;
  /// Decision-rule tolerance for robust reconstruction (keep in sync
  /// with EngineConfig::dist_tolerance).
  std::uint64_t dist_tolerance = 64;
  /// Seed of the client's sharing randomness.
  std::uint64_t seed = 1;
  /// Queue deadline the owner enforces for each request (0 = owner
  /// default).
  std::chrono::milliseconds deadline{2000};
  /// Client-side bound on waiting for result shares.
  std::chrono::milliseconds response_timeout{10000};
  /// Extra wait for the third share once two have arrived, trading a
  /// little latency for three-way majority checking.
  std::chrono::milliseconds straggler_grace{150};
  int max_retries = 3;
  /// Base of the exponential retry backoff.  The actual sleep before
  /// retry k is uniform in [base*2^k / 2, base*2^k] (decorrelated
  /// jitter from the client's own RNG), so a pod failing over a whole
  /// cohort of clients does not produce a synchronized retry storm
  /// against the next pod in the ring.
  std::chrono::milliseconds retry_backoff{25};
  /// Cap on the jittered backoff.
  std::chrono::milliseconds retry_backoff_max{1000};
};

struct InferenceResult {
  Status status = Status::kDeadlineMissed;
  /// Argmax prediction per input row (empty unless status == kOk).
  std::vector<std::size_t> labels;
  /// Reconstructed class probabilities [rows, classes].
  RealTensor probabilities;
  /// Parties whose result share arrived and parsed.
  int responders = 0;
  /// Robust reconstruction flagged a deviating share set.
  bool anomaly = false;
  /// Party the deviation was attributed to (-1 if none/ambiguous).
  int suspect = -1;
  /// Submissions it took (1 = no retry).
  int attempts = 1;
};

class InferenceClient {
 public:
  /// `endpoint` must be a client actor (id >= kFirstClientId) on a
  /// transport that also carries the three parties and the model
  /// owner.
  InferenceClient(net::Endpoint endpoint, ClientOptions options);

  /// Share `images` ([rows, features] in [0,1]) to the parties and
  /// notify the owner; returns the request's seq.
  std::uint64_t submit(const RealTensor& images);

  /// Await the outcome of request `seq` covering `rows` input rows.
  InferenceResult await(std::uint64_t seq, std::size_t rows);

  /// submit() + await(), retrying rejected requests with backoff.
  InferenceResult infer(const RealTensor& images);

  /// Final message on this client's notice stream; the scheduler
  /// counts stops to know when serving may shut down.
  void stop();

 private:
  /// Correlation id carried by this client's trace records for request
  /// `seq` ("req:<client>:<seq>").
  std::string request_correlation(std::uint64_t seq) const;

  net::Endpoint endpoint_;
  ClientOptions options_;
  std::mutex mu_;           ///< guards rng_ and next_seq_
  Rng rng_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace trustddl::serve
