// Wire format of the secure inference serving layer.
//
// Serving adds a sixth role to the paper's five actors: clients, at
// actor ids kFirstClientId onward.  A request travels over three
// dedicated tag classes (see net::tag_class):
//
//   client -> party        "srv/<seq>/in"     input share triple
//   client -> model owner  "srv/<seq>/notice" admission notice
//   owner  -> party        "srv/<n>/man"      batch manifest
//   owner  -> client       "srv/<seq>/ctl"    rejection / deadline verdict
//   party  -> client       "srv/<seq>/res"    result share triple
//
// `seq` is a per-client monotonic request counter, so every message of
// one request is matched by (sender, tag) alone and arrival order
// never matters.  The model owner — trusted in the paper's model, and
// already the dealer and Softmax hub — is the single batch sequencer:
// it turns admitted requests into manifests, and the three computing
// parties execute identical manifests in lockstep, preserving the SPMD
// property the MPC protocols require.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "core/roles.hpp"
#include "mpc/sharing.hpp"

namespace trustddl::serve {

/// First actor id used for serving clients (after the five core
/// roles); client k is actor kFirstClientId + k and the transport must
/// be sized core::kNumActors + num_clients.
inline constexpr net::PartyId kFirstClientId = core::kNumActors;

/// Terminal status of one inference request, as seen by the client.
enum class Status : std::uint8_t {
  kOk = 0,
  /// Bounded queue was full at admission — retryable backpressure.
  kRejected = 1,
  /// Deadline expired: in the owner's queue, or client-side while
  /// waiting for result shares.
  kDeadlineMissed = 2,
};

const char* status_name(Status status);

/// Kinds of client -> owner notices.  kStop is the final message on a
/// client's notice stream; its seq is one past the last request.
enum class NoticeKind : std::uint8_t { kRequest = 0, kStop = 1 };

std::string notice_tag(std::uint64_t seq);
std::string input_tag(std::uint64_t seq);
std::string manifest_tag(std::uint64_t index);
std::string control_tag(std::uint64_t seq);
std::string result_tag(std::uint64_t seq);

/// Client -> owner admission notice for request `seq`.
struct RequestNotice {
  NoticeKind kind = NoticeKind::kRequest;
  std::uint64_t seq = 0;
  std::uint64_t rows = 0;
  /// Milliseconds the request may wait in the owner's queue before it
  /// is declared dead (0 = use the scheduler's default).
  std::uint64_t deadline_ms = 0;
};

Bytes encode_notice(const RequestNotice& notice);
RequestNotice decode_notice(Bytes payload);

/// One request inside a batch manifest.
struct ManifestEntry {
  net::PartyId client = 0;
  std::uint64_t seq = 0;
  std::uint64_t rows = 0;
  /// Microseconds the request waited in the owner's queue between
  /// admission and dispatch — the "queue" term of the per-request
  /// critical-path breakdown in merge_traces.py.
  std::uint64_t queue_us = 0;
};

/// Owner -> party batch instruction: the requests to coalesce into one
/// SecureModel forward, in queue order.  Identical at every party.  A
/// manifest with `shutdown` set carries no entries and ends the serve
/// loop.
struct BatchManifest {
  std::uint64_t index = 0;
  /// Fleet-unique correlation id minted by the sequencer (wall-clock
  /// epoch in the high bits, batch index in the low bits); every
  /// party's spans for this batch carry `corr = "batch:<trace_id>"`.
  std::uint64_t trace_id = 0;
  bool shutdown = false;
  std::vector<ManifestEntry> entries;

  std::size_t total_rows() const;
};

Bytes encode_manifest(const BatchManifest& manifest);
BatchManifest decode_manifest(Bytes payload);

/// Owner -> client verdict for a request that never reached a batch.
struct ControlResponse {
  Status status = Status::kRejected;
  std::uint64_t seq = 0;
};

Bytes encode_control(const ControlResponse& control);
ControlResponse decode_control(Bytes payload);

/// Share-triple payloads (inputs and results use the same framing).
Bytes encode_share(const mpc::PartyShare& share);
mpc::PartyShare decode_share(Bytes payload);

/// Row-wise concatenation of rank-2 share triples (batch coalescing).
mpc::PartyShare concat_rows(const std::vector<mpc::PartyShare>& parts);

/// Rows [start, start+count) of a rank-2 share triple (batch split).
mpc::PartyShare slice_rows(const mpc::PartyShare& share, std::size_t start,
                           std::size_t count);

}  // namespace trustddl::serve
