#include "serve/wire.hpp"

#include "mpc/share_serde.hpp"

namespace trustddl::serve {
namespace {

std::string srv_tag(std::uint64_t number, const char* what) {
  return "srv/" + std::to_string(number) + "/" + what;
}

Status status_from_u8(std::uint8_t raw) {
  TRUSTDDL_REQUIRE(raw <= static_cast<std::uint8_t>(Status::kDeadlineMissed),
                   "serve: unknown status byte");
  return static_cast<Status>(raw);
}

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kRejected:
      return "rejected";
    case Status::kDeadlineMissed:
      return "deadline_missed";
  }
  return "unknown";
}

std::string notice_tag(std::uint64_t seq) { return srv_tag(seq, "notice"); }
std::string input_tag(std::uint64_t seq) { return srv_tag(seq, "in"); }
std::string manifest_tag(std::uint64_t index) { return srv_tag(index, "man"); }
std::string control_tag(std::uint64_t seq) { return srv_tag(seq, "ctl"); }
std::string result_tag(std::uint64_t seq) { return srv_tag(seq, "res"); }

Bytes encode_notice(const RequestNotice& notice) {
  ByteWriter writer;
  writer.write_u8(static_cast<std::uint8_t>(notice.kind));
  writer.write_u64(notice.seq);
  writer.write_u64(notice.rows);
  writer.write_u64(notice.deadline_ms);
  return writer.take();
}

RequestNotice decode_notice(Bytes payload) {
  ByteReader reader(std::move(payload));
  RequestNotice notice;
  const std::uint8_t kind = reader.read_u8();
  TRUSTDDL_REQUIRE(kind <= static_cast<std::uint8_t>(NoticeKind::kStop),
                   "serve: unknown notice kind");
  notice.kind = static_cast<NoticeKind>(kind);
  notice.seq = reader.read_u64();
  notice.rows = reader.read_u64();
  notice.deadline_ms = reader.read_u64();
  return notice;
}

std::size_t BatchManifest::total_rows() const {
  std::size_t rows = 0;
  for (const auto& entry : entries) {
    rows += entry.rows;
  }
  return rows;
}

Bytes encode_manifest(const BatchManifest& manifest) {
  ByteWriter writer;
  writer.write_u64(manifest.index);
  writer.write_u64(manifest.trace_id);
  writer.write_u8(manifest.shutdown ? 1 : 0);
  writer.write_u32(static_cast<std::uint32_t>(manifest.entries.size()));
  for (const auto& entry : manifest.entries) {
    writer.write_u32(static_cast<std::uint32_t>(entry.client));
    writer.write_u64(entry.seq);
    writer.write_u64(entry.rows);
    writer.write_u64(entry.queue_us);
  }
  return writer.take();
}

BatchManifest decode_manifest(Bytes payload) {
  ByteReader reader(std::move(payload));
  BatchManifest manifest;
  manifest.index = reader.read_u64();
  manifest.trace_id = reader.read_u64();
  manifest.shutdown = reader.read_u8() != 0;
  const std::uint32_t count = reader.read_u32();
  manifest.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ManifestEntry entry;
    entry.client = static_cast<net::PartyId>(reader.read_u32());
    entry.seq = reader.read_u64();
    entry.rows = reader.read_u64();
    entry.queue_us = reader.read_u64();
    manifest.entries.push_back(entry);
  }
  return manifest;
}

Bytes encode_control(const ControlResponse& control) {
  ByteWriter writer;
  writer.write_u8(static_cast<std::uint8_t>(control.status));
  writer.write_u64(control.seq);
  return writer.take();
}

ControlResponse decode_control(Bytes payload) {
  ByteReader reader(std::move(payload));
  ControlResponse control;
  control.status = status_from_u8(reader.read_u8());
  control.seq = reader.read_u64();
  return control;
}

Bytes encode_share(const mpc::PartyShare& share) {
  ByteWriter writer;
  mpc::write_party_share(writer, share);
  return writer.take();
}

mpc::PartyShare decode_share(Bytes payload) {
  ByteReader reader(std::move(payload));
  return mpc::read_party_share(reader);
}

mpc::PartyShare concat_rows(const std::vector<mpc::PartyShare>& parts) {
  TRUSTDDL_REQUIRE(!parts.empty(), "serve: concat of zero shares");
  const std::size_t cols = parts.front().shape().at(1);
  std::size_t rows = 0;
  for (const auto& part : parts) {
    TRUSTDDL_REQUIRE(part.shape().size() == 2 && part.shape()[1] == cols,
                     "serve: concat shape mismatch");
    rows += part.shape()[0];
  }
  auto concat_component = [&](auto accessor) {
    RingTensor out(Shape{rows, cols});
    std::uint64_t* cursor = out.data();
    for (const auto& part : parts) {
      const RingTensor& component = accessor(part);
      std::copy(component.data(), component.data() + component.size(),
                cursor);
      cursor += component.size();
    }
    return out;
  };
  mpc::PartyShare out;
  out.primary =
      concat_component([](const mpc::PartyShare& s) -> const RingTensor& {
        return s.primary;
      });
  out.duplicate =
      concat_component([](const mpc::PartyShare& s) -> const RingTensor& {
        return s.duplicate;
      });
  out.second =
      concat_component([](const mpc::PartyShare& s) -> const RingTensor& {
        return s.second;
      });
  return out;
}

mpc::PartyShare slice_rows(const mpc::PartyShare& share, std::size_t start,
                           std::size_t count) {
  TRUSTDDL_REQUIRE(share.shape().size() == 2 &&
                       start + count <= share.shape()[0],
                   "serve: row slice out of range");
  const std::size_t cols = share.shape()[1];
  return mpc::transform_share(share, [&](const RingTensor& component) {
    RingTensor out(Shape{count, cols});
    std::copy(component.data() + start * cols,
              component.data() + (start + count) * cols, out.data());
    return out;
  });
}

}  // namespace trustddl::serve
