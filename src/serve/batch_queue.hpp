// Bounded admission queue with dynamic batching for the serving layer.
//
// The queue is deliberately free of threads and clocks (callers pass
// `now`), so the flush/expiry state machine is deterministic and
// directly unit-testable.  Policy (DESIGN.md §Serving):
//
//   * admission   — push() refuses beyond `queue_capacity`
//                   (backpressure; the scheduler answers kRejected);
//   * expiry      — expire(now) removes entries whose deadline passed
//                   (the scheduler answers kDeadlineMissed);
//   * flush       — should_flush(now) once pending rows reach
//                   `max_batch_rows` OR the oldest entry has waited a
//                   full `batch_window`, whichever happens first;
//   * batch shape — pop_batch() takes entries in arrival order until
//                   adding the next one would exceed `max_batch_rows`
//                   (a single oversized request still dispatches
//                   alone).  Leftovers keep their admission time, so a
//                   backlog drains in consecutive window-expired
//                   flushes.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "net/message.hpp"

namespace trustddl::serve {

/// Knobs of the owner-side batch sequencer (and the party-side input
/// wait); one struct so every deployment configures serving in one
/// place.
struct ServeConfig {
  /// Flush a batch as soon as this many rows are pending.
  std::size_t max_batch_rows = 8;
  /// ... or once the oldest pending request has waited this long.
  std::chrono::milliseconds batch_window{20};
  /// Bounded queue: requests beyond this many pending are rejected.
  std::size_t queue_capacity = 64;
  /// Queue deadline applied when a notice carries deadline_ms == 0.
  std::chrono::milliseconds default_deadline{5000};
  /// How long a party waits for one client's input share before
  /// substituting a zero share (crash degradation; the client still
  /// reconstructs from the other two parties).
  std::chrono::milliseconds input_wait{2000};
  /// Chaos knob: the scheduler abandons its loop (no shutdown
  /// manifests, queue contents dropped) after dispatching this many
  /// batches — simulates an owner crash for pod-failover tests.
  /// 0 = run to completion.
  std::size_t max_batches = 0;
};

class BatchQueue {
 public:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    net::PartyId client = 0;
    std::uint64_t seq = 0;
    std::size_t rows = 0;
    Clock::time_point admitted;
    Clock::time_point deadline;
  };

  BatchQueue(std::size_t capacity, std::size_t max_batch_rows,
             std::chrono::milliseconds window)
      : capacity_(capacity), max_batch_rows_(max_batch_rows),
        window_(window) {}

  /// Admit one request; false when the queue is full.
  bool push(Entry entry);

  /// Remove and return every entry whose deadline passed.
  std::vector<Entry> expire(Clock::time_point now);

  /// True when a batch should be dispatched at `now`.
  bool should_flush(Clock::time_point now) const;

  /// Pop the next batch (non-empty; see header comment for shape).
  std::vector<Entry> pop_batch();

  std::size_t size() const { return pending_.size(); }
  bool empty() const { return pending_.empty(); }
  std::size_t pending_rows() const { return pending_rows_; }

 private:
  std::size_t capacity_;
  std::size_t max_batch_rows_;
  std::chrono::milliseconds window_;
  std::deque<Entry> pending_;
  std::size_t pending_rows_ = 0;
};

}  // namespace trustddl::serve
