#include "serve/scheduler.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "core/roles.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/wire.hpp"

namespace trustddl::serve {
namespace {

constexpr const char* kLog = "serve.scheduler";

}  // namespace

BatchScheduler::BatchScheduler(net::Endpoint endpoint, ServeConfig config,
                               int num_clients)
    : endpoint_(endpoint), config_(config), num_clients_(num_clients),
      queue_(config.queue_capacity, config.max_batch_rows,
             config.batch_window) {
  TRUSTDDL_REQUIRE(num_clients >= 1, "serve: need at least one client");
  trace_id_base_ = (obs::wall_epoch_us() / 1000000) << 32;
}

void BatchScheduler::run() {
  std::vector<std::uint64_t> next_seq(static_cast<std::size_t>(num_clients_),
                                      0);
  std::vector<bool> stopped(static_cast<std::size_t>(num_clients_), false);
  int stopped_count = 0;
  while (true) {
    bool progress = false;
    for (int index = 0; index < num_clients_; ++index) {
      const auto slot = static_cast<std::size_t>(index);
      if (stopped[slot]) {
        continue;
      }
      const net::PartyId client = kFirstClientId + index;
      Bytes payload;
      // Notices are read strictly in per-client seq order; seq is the
      // only framing, so concurrent submitters on one client need no
      // wire-level ordering.
      while (endpoint_.try_recv(client, notice_tag(next_seq[slot]),
                                payload)) {
        progress = true;
        ++next_seq[slot];
        const RequestNotice notice = decode_notice(std::move(payload));
        if (notice.kind == NoticeKind::kStop) {
          stopped[slot] = true;
          ++stopped_count;
          break;
        }
        handle_notice(client, notice);
      }
    }

    const auto now = BatchQueue::Clock::now();
    for (const auto& dead : queue_.expire(now)) {
      progress = true;
      ++stats_.deadline_missed;
      obs::count("serve.requests.deadline_missed");
      obs::gauge_add("serve.queue.depth", -1);
      send_control(dead.client, dead.seq, Status::kDeadlineMissed);
    }
    if (queue_.should_flush(now)) {
      progress = true;
      dispatch(queue_.pop_batch());
    }
    if (config_.max_batches != 0 && stats_.batches >= config_.max_batches) {
      // Chaos knob: vanish mid-service like a crashed owner — no
      // shutdown manifests, no verdicts for whatever is still queued.
      TRUSTDDL_LOG_WARN(kLog) << "scheduler crashing after "
                              << stats_.batches << " batches (chaos)";
      return;
    }
    if (stopped_count == num_clients_ && queue_.empty()) {
      break;
    }
    if (!progress) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  BatchManifest goodbye;
  goodbye.index = next_manifest_++;
  goodbye.shutdown = true;
  const Bytes payload = encode_manifest(goodbye);
  for (int party = 0; party < core::kComputingParties; ++party) {
    endpoint_.send(party, manifest_tag(goodbye.index), payload);
  }
  TRUSTDDL_LOG_INFO(kLog) << "scheduler done: " << stats_.admitted
                          << " admitted, " << stats_.completed
                          << " dispatched in " << stats_.batches
                          << " batches, " << stats_.rejected << " rejected, "
                          << stats_.deadline_missed << " deadline-missed";
}

void BatchScheduler::handle_notice(net::PartyId client,
                                   const RequestNotice& notice) {
  ++stats_.admitted;
  obs::count("serve.requests.admitted");
  const auto now = BatchQueue::Clock::now();
  BatchQueue::Entry entry;
  entry.client = client;
  entry.seq = notice.seq;
  entry.rows = notice.rows;
  entry.admitted = now;
  entry.deadline =
      now + (notice.deadline_ms != 0
                 ? std::chrono::milliseconds(notice.deadline_ms)
                 : config_.default_deadline);
  if (queue_.push(entry)) {
    obs::gauge_add("serve.queue.depth", 1);
  } else {
    ++stats_.rejected;
    obs::count("serve.requests.rejected");
    send_control(client, notice.seq, Status::kRejected);
  }
}

void BatchScheduler::dispatch(std::vector<BatchQueue::Entry> batch) {
  const auto now = BatchQueue::Clock::now();
  BatchManifest manifest;
  manifest.index = next_manifest_++;
  manifest.trace_id = trace_id_base_ | manifest.index;
  manifest.entries.reserve(batch.size());
  for (const auto& entry : batch) {
    const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
        now - entry.admitted);
    const std::uint64_t queue_us =
        waited.count() > 0 ? static_cast<std::uint64_t>(waited.count()) : 0;
    manifest.entries.push_back({entry.client, entry.seq, entry.rows,
                                queue_us});
    obs::observe("serve.queue.wait.us", queue_us);
  }
  const Bytes payload = encode_manifest(manifest);
  for (int party = 0; party < core::kComputingParties; ++party) {
    endpoint_.send(party, manifest_tag(manifest.index), payload);
  }
  ++stats_.batches;
  stats_.completed += batch.size();
  stats_.batched_rows += manifest.total_rows();
  obs::count("serve.batches");
  obs::count("serve.requests.completed", batch.size());
  obs::observe("serve.batch.rows", manifest.total_rows());
  obs::gauge_add("serve.queue.depth",
                 -static_cast<std::int64_t>(batch.size()));
  obs::HealthState::global().note_progress("serve.last_batch",
                                           manifest.index);
  if (obs::tracing_enabled()) {
    // The owner-side join record for merge_traces.py: which requests
    // ride in this batch and how long each one queued.
    const obs::CorrelationScope corr("batch:" +
                                     std::to_string(manifest.trace_id));
    std::string extra =
        "\"trace_id\": " + std::to_string(manifest.trace_id) +
        ", \"entries\": [";
    for (std::size_t i = 0; i < manifest.entries.size(); ++i) {
      const auto& entry = manifest.entries[i];
      if (i > 0) {
        extra += ", ";
      }
      extra += "{\"client\": " + std::to_string(entry.client) +
               ", \"seq\": " + std::to_string(entry.seq) +
               ", \"rows\": " + std::to_string(entry.rows) +
               ", \"queue_us\": " + std::to_string(entry.queue_us) + "}";
    }
    extra += "]";
    obs::trace_instant("serve.dispatch", core::kModelOwner, manifest.index,
                       extra);
  }
}

void BatchScheduler::send_control(net::PartyId client, std::uint64_t seq,
                                  Status status) {
  endpoint_.send(client, control_tag(seq),
                 encode_control(ControlResponse{status, seq}));
}

}  // namespace trustddl::serve
