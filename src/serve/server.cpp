#include "serve/server.hpp"

#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/wire.hpp"

namespace trustddl::serve {
namespace {

constexpr const char* kLog = "serve.server";

/// Generous bound for the next manifest: the owner may legitimately be
/// idle while no client has anything to ask.
constexpr auto kManifestTimeout = std::chrono::seconds(60);

/// Byzantine result corruption: a constant offset on every component —
/// the share frame stays well-formed, the reconstructed value is junk.
mpc::PartyShare corrupted(const mpc::PartyShare& share) {
  return mpc::transform_share(share, [](const RingTensor& component) {
    RingTensor out = component;
    for (auto& value : out.values()) {
      value += 0x517e57ab1e0ddba1ULL;
    }
    return out;
  });
}

}  // namespace

InferenceServer::InferenceServer(int party, net::Endpoint endpoint,
                                 ServerOptions options)
    : party_(party), endpoint_(endpoint), options_(std::move(options)) {}

bool InferenceServer::run(core::SecureModel& model,
                          core::SecureExecContext& ctx,
                          std::size_t input_features) {
  for (std::uint64_t index = 0;; ++index) {
    // Poll for the next manifest, spending idle gaps on triple-store
    // refills (the serving variant of the offline phase): with a
    // pipeline attached, the wait between batches becomes productive
    // preprocessing time instead of a blocking recv.
    Bytes manifest_bytes;
    const auto manifest_deadline =
        std::chrono::steady_clock::now() + kManifestTimeout;
    while (!endpoint_.try_recv(core::kModelOwner, manifest_tag(index),
                               manifest_bytes)) {
      if (std::chrono::steady_clock::now() > manifest_deadline) {
        throw TimeoutError("serve: no manifest " + std::to_string(index));
      }
      const std::size_t refilled =
          pipeline_ != nullptr ? pipeline_->refill_once() : 0;
      if (refilled == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    const BatchManifest manifest = decode_manifest(manifest_bytes);
    if (manifest.shutdown) {
      return true;
    }
    TRUSTDDL_REQUIRE(!manifest.entries.empty(), "serve: empty manifest");

    // Correlation scope first (so it outlives the span's destructor):
    // every protocol span this thread emits while executing the batch
    // carries the sequencer-minted id, joining the three parties' work
    // to the owner's dispatch record.
    const obs::CorrelationScope corr(
        "batch:" + std::to_string(manifest.trace_id));
    obs::trace_instant("serve.manifest", party_, index,
                       "\"trace_id\": " + std::to_string(manifest.trace_id) +
                           ", \"entries\": " +
                           std::to_string(manifest.entries.size()));
    obs::HealthState::global().note_progress("serve.last_batch", index);
    obs::ScopedSpan span("serve.batch", party_, index);
    std::vector<mpc::PartyShare> inputs;
    inputs.reserve(manifest.entries.size());
    for (const auto& entry : manifest.entries) {
      const Shape expected{entry.rows, input_features};
      mpc::PartyShare share = mpc::zero_share(expected);
      try {
        share = decode_share(endpoint_.recv(entry.client,
                                            input_tag(entry.seq),
                                            options_.serve.input_wait));
        TRUSTDDL_REQUIRE(share.shape() == expected,
                         "serve: input share shape mismatch");
      } catch (const Error& error) {
        // Missing or malformed input: stay in lockstep with a zero
        // share; the client's robust 2-of-3 reconstruction covers the
        // gap at this party.
        share = mpc::zero_share(expected);
        obs::count("serve.party.input_substituted");
        TRUSTDDL_LOG_WARN(kLog)
            << "party " << party_ << " batch " << index
            << ": substituting zero input for client " << entry.client
            << " seq " << entry.seq << " (" << error.what() << ")";
      }
      inputs.push_back(std::move(share));
    }

    const mpc::PartyShare probabilities =
        model.forward(ctx, concat_rows(inputs));

    std::size_t offset = 0;
    for (const auto& entry : manifest.entries) {
      mpc::PartyShare result =
          slice_rows(probabilities, offset, entry.rows);
      offset += entry.rows;
      if (options_.corrupt_results) {
        result = corrupted(result);
      }
      endpoint_.send(entry.client, result_tag(entry.seq),
                     encode_share(result));
    }
    ++batches_;
    obs::count("serve.party.batches");
    if (pipeline_ != nullptr && spec_ != nullptr) {
      // Adaptive steady-state planning: the first manifest of a given
      // row count pays the on-demand miss cost; raising the targets to
      // two steps' worth lets later same-size batches pop prefetched
      // entries filled during the idle poll above.
      std::size_t total_rows = 0;
      for (const auto& entry : manifest.entries) {
        total_rows += entry.rows;
      }
      pipeline_->plan_step(*spec_, total_rows, 2);
    }

    if (options_.max_batches != 0 && batches_ >= options_.max_batches) {
      TRUSTDDL_LOG_WARN(kLog) << "party " << party_
                              << " crashing after batch " << index
                              << " (fault injection)";
      return false;
    }
  }
}

mpc::DetectionLog serve_computing_party_body(
    const nn::ModelSpec& spec, const core::EngineConfig& config,
    std::size_t param_count, int party, net::Endpoint endpoint,
    const ServerOptions& options, std::size_t* batches_out) {
  core::OwnerLink link(endpoint, party, options.owner_link_timeout);
  core::SecureModel model(spec,
                          core::receive_parameters(endpoint, param_count));

  mpc::PartyContext pctx = core::make_party_context(config, party, endpoint);
  core::SecureExecContext sctx = core::make_exec_context(config, pctx, link);

  // Serving uses the idle-poll refill inside InferenceServer::run
  // rather than a producer thread: the gaps between manifests are the
  // natural offline phase, and a restarted party restores whatever the
  // previous incarnation persisted.
  core::TriplePipeline pipeline(config, link, party, /*training=*/false);
  InferenceServer server(party, endpoint, options);
  if (pipeline.active()) {
    sctx.triples = &pipeline.source();
    server.set_pipeline(&pipeline, &spec);
  }
  const bool clean = server.run(model, sctx, spec.input_features);
  if (batches_out != nullptr) {
    *batches_out = server.batches_executed();
  }
  pipeline.shutdown();  // persist the store before the link closes
  if (clean) {
    link.stop();
  }
  return pctx.detections;
}

void serve_model_owner_body(const nn::ModelSpec& spec,
                            const core::EngineConfig& config,
                            nn::Sequential& model, net::Endpoint endpoint,
                            const ServeConfig& serve_config, int num_clients,
                            SchedulerStats* stats_out) {
  // Same parameter-sharing seed derivation as one-shot inference, so a
  // serving deployment distributes bit-identical parameter shares.
  Rng rng(config.seed * 59 + 29);
  core::share_parameters(model, endpoint, config.frac_bits, rng);

  core::ModelOwnerService service(
      endpoint, core::make_owner_service_config(config, /*training=*/false));
  std::exception_ptr service_error;
  std::thread service_thread([&] {
    try {
      service.run();
    } catch (...) {
      service_error = std::current_exception();
    }
  });

  BatchScheduler scheduler(endpoint, serve_config, num_clients);
  try {
    scheduler.run();
  } catch (...) {
    service.request_stop();
    service_thread.join();
    throw;
  }
  if (serve_config.max_batches != 0) {
    // Chaos crash: the whole owner process vanishes — do not wait for
    // party stops that crashed parties will never send.
    service.request_stop();
  }
  service_thread.join();
  if (stats_out != nullptr) {
    *stats_out = scheduler.stats();
  }
  if (service_error) {
    std::rethrow_exception(service_error);
  }
}

}  // namespace trustddl::serve
