#include "serve/batch_queue.hpp"

#include "common/error.hpp"

namespace trustddl::serve {

bool BatchQueue::push(Entry entry) {
  TRUSTDDL_REQUIRE(entry.rows >= 1, "serve: empty request");
  if (pending_.size() >= capacity_) {
    return false;
  }
  pending_rows_ += entry.rows;
  pending_.push_back(std::move(entry));
  return true;
}

std::vector<BatchQueue::Entry> BatchQueue::expire(Clock::time_point now) {
  std::vector<Entry> expired;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->deadline <= now) {
      pending_rows_ -= it->rows;
      expired.push_back(*it);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

bool BatchQueue::should_flush(Clock::time_point now) const {
  if (pending_.empty()) {
    return false;
  }
  return pending_rows_ >= max_batch_rows_ ||
         now - pending_.front().admitted >= window_;
}

std::vector<BatchQueue::Entry> BatchQueue::pop_batch() {
  TRUSTDDL_REQUIRE(!pending_.empty(), "serve: pop from empty queue");
  std::vector<Entry> batch;
  std::size_t rows = 0;
  while (!pending_.empty()) {
    const Entry& next = pending_.front();
    if (!batch.empty() && rows + next.rows > max_batch_rows_) {
      break;
    }
    rows += next.rows;
    pending_rows_ -= next.rows;
    batch.push_back(next);
    pending_.pop_front();
    if (rows >= max_batch_rows_) {
      break;
    }
  }
  return batch;
}

}  // namespace trustddl::serve
