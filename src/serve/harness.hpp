// In-process serving session: every serving actor (three party
// servers, the model owner with its scheduler, K clients) on threads
// over one in-memory Network.  The serving analogue of
// TrustDdlEngine's run_actors deployment — tests and bench_serving
// drive the full request/batch/reconstruct pipeline without sockets,
// with the same seed derivations as the multi-process CLI so both
// deployments are interchangeable.
#pragma once

#include <array>
#include <functional>

#include "core/engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace trustddl::serve {

struct SessionConfig {
  nn::ModelSpec spec;
  core::EngineConfig engine;
  ServeConfig serve;
  /// Per-client options template; each client derives its own sharing
  /// seed from `client.seed` and its index.
  ClientOptions client;
  int num_clients = 1;
  /// Fault injection: party returning corrupted result shares (-1 =
  /// none) ...
  int corrupt_party = -1;
  /// ... and party crashing after `crash_after_batches` batches.
  int crash_party = -1;
  std::size_t crash_after_batches = 0;
};

struct SessionResult {
  SchedulerStats scheduler;
  std::array<std::size_t, core::kComputingParties> party_batches{};
  double wall_seconds = 0.0;
  net::TrafficSnapshot traffic;
};

/// `client_body(index, client)` runs on client `index`'s thread; the
/// harness sends the stop notice after it returns.  Throws the first
/// actor failure after joining every thread.
SessionResult run_serving_session(
    const SessionConfig& config,
    const std::function<void(int, InferenceClient&)>& client_body);

}  // namespace trustddl::serve
