#include "serve/harness.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "common/stopwatch.hpp"
#include "core/metrics_export.hpp"
#include "net/network.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"

namespace trustddl::serve {
namespace {

/// Serving-session cost report for the metrics export: traffic split
/// as in TrustDdlEngine::collect_cost (proxy = party<->party links,
/// owner = everything touching owners or clients), detection counters
/// summed over the party logs.
core::CostReport session_cost(const net::TrafficSnapshot& traffic,
                              double wall_seconds,
                              const std::array<mpc::DetectionLog, 3>& logs) {
  core::CostReport report;
  report.wall_seconds = wall_seconds;
  report.total_bytes = traffic.total_bytes;
  report.total_messages = traffic.total_messages;
  const auto actors = traffic.links.size();
  for (std::size_t i = 0; i < actors; ++i) {
    for (std::size_t j = 0; j < actors; ++j) {
      const auto bytes = traffic.links[i][j].bytes;
      if (i < core::kComputingParties && j < core::kComputingParties) {
        report.proxy_bytes += bytes;
      } else {
        report.owner_bytes += bytes;
      }
    }
  }
  for (const auto& log : logs) {
    report.commitment_violations +=
        log.count(mpc::DetectionEvent::Kind::kCommitmentViolation);
    report.distance_anomalies +=
        log.count(mpc::DetectionEvent::Kind::kDistanceAnomaly);
    report.share_auth_failures +=
        log.count(mpc::DetectionEvent::Kind::kShareAuthFailure);
    report.recovered_opens += log.recovered_opens;
  }
  report.opening_rounds = logs[0].opens;
  report.values_opened = logs[0].values_opened;
  return report;
}

}  // namespace

SessionResult run_serving_session(
    const SessionConfig& config,
    const std::function<void(int, InferenceClient&)>& client_body) {
  TRUSTDDL_REQUIRE(config.num_clients >= 1,
                   "serve: session needs at least one client");
  kernels::set_global_config(config.engine.kernels);
  if (!config.engine.metrics_out.empty()) {
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::global().reset();
    obs::EventLog::global().clear();
  }
  if (!config.engine.trace_out.empty()) {
    obs::Tracer::global().open(config.engine.trace_out);
  }

  net::NetworkConfig net_config;
  net_config.num_parties = core::kNumActors + config.num_clients;
  net_config.recv_timeout = config.engine.recv_timeout;
  net_config.emulate_latency = config.engine.emulate_latency;
  net_config.link_latency = config.engine.link_latency;
  net::Network network(net_config);

  // Same reference-model construction as TrustDdlEngine, so a serving
  // session evaluates exactly the model engine.infer() would.
  Rng model_rng(config.engine.seed);
  nn::Sequential model = nn::build_model(config.spec, model_rng);
  const std::size_t param_count = model.parameters().size();

  SessionResult result;
  std::array<mpc::DetectionLog, 3> detection_logs;

  std::vector<std::function<void()>> bodies;
  bodies.emplace_back([&] {
    serve_model_owner_body(config.spec, config.engine, model,
                           network.endpoint(core::kModelOwner), config.serve,
                           config.num_clients, &result.scheduler);
  });
  for (int party = 0; party < core::kComputingParties; ++party) {
    bodies.emplace_back([&, party] {
      ServerOptions options;
      options.serve = config.serve;
      options.corrupt_results = party == config.corrupt_party;
      if (party == config.crash_party) {
        options.max_batches = config.crash_after_batches;
      }
      detection_logs[static_cast<std::size_t>(party)] =
          serve_computing_party_body(
              config.spec, config.engine, param_count, party,
              network.endpoint(party), options,
              &result.party_batches[static_cast<std::size_t>(party)]);
    });
  }
  for (int index = 0; index < config.num_clients; ++index) {
    bodies.emplace_back([&, index] {
      ClientOptions options = config.client;
      options.frac_bits = config.engine.frac_bits;
      options.dist_tolerance = config.engine.dist_tolerance;
      options.seed = config.client.seed * 1000003 + 17 *
                     static_cast<std::uint64_t>(index + 1);
      InferenceClient client(
          network.endpoint(kFirstClientId + index), options);
      client_body(index, client);
      client.stop();
    });
  }

  Stopwatch stopwatch;
  std::vector<std::exception_ptr> errors(bodies.size());
  std::vector<std::thread> threads;
  threads.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        bodies[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  result.wall_seconds = stopwatch.elapsed_seconds();
  result.traffic = network.traffic();

  for (const auto& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }

  if (!config.engine.metrics_out.empty()) {
    core::write_metrics_export(
        config.engine.metrics_out, obs::MetricsRegistry::global().snapshot(),
        obs::EventLog::global().snapshot(), result.traffic,
        session_cost(result.traffic, result.wall_seconds, detection_logs));
  }
  if (!config.engine.trace_out.empty()) {
    obs::Tracer::global().close();
  }
  return result;
}

}  // namespace trustddl::serve
