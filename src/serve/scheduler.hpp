// Owner-side batch sequencer for the serving layer.
//
// Dynamic batching needs every computing party to execute IDENTICAL
// batches (the MPC protocols are SPMD — a one-request disagreement
// desynchronises every subsequent opening).  Local timers at the
// parties cannot guarantee that, and a party-elected leader would hand
// a Byzantine party a denial-of-service lever.  The model owner is
// trusted in the paper's deployment model (it already deals all
// preprocessing material and computes outsourced Softmax), so it is
// the natural single sequencer: clients notify it of submitted
// requests, it runs the bounded BatchQueue, and it broadcasts each
// batch manifest to the three parties, which follow in lockstep.
//
// The scheduler owns the request lifecycle ledger: every admitted
// notice ends in exactly one of {completed (dispatched in a manifest),
// rejected, deadline_missed} — the serve.requests.* counters satisfy
//   admitted == completed + rejected + deadline_missed
// by construction, and scripts/check_metrics.py enforces it.
#pragma once

#include <cstdint>

#include "net/transport.hpp"
#include "serve/batch_queue.hpp"
#include "serve/wire.hpp"

namespace trustddl::serve {

struct SchedulerStats {
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_missed = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_rows = 0;
};

class BatchScheduler {
 public:
  /// `endpoint` must be the model owner's; clients occupy actor ids
  /// kFirstClientId .. kFirstClientId + num_clients - 1.
  BatchScheduler(net::Endpoint endpoint, ServeConfig config,
                 int num_clients);

  /// Sequence batches until every client sent its stop notice and the
  /// queue drained; then broadcast the shutdown manifest.  Runs on the
  /// model owner's thread (alongside, not inside, ModelOwnerService).
  void run();

  const SchedulerStats& stats() const { return stats_; }

 private:
  void handle_notice(net::PartyId client, const RequestNotice& notice);
  void dispatch(std::vector<BatchQueue::Entry> batch);
  void send_control(net::PartyId client, std::uint64_t seq, Status status);

  net::Endpoint endpoint_;
  ServeConfig config_;
  int num_clients_;
  BatchQueue queue_;
  SchedulerStats stats_;
  std::uint64_t next_manifest_ = 0;
  /// High bits of every minted BatchManifest::trace_id (wall-clock
  /// seconds at construction), making batch correlation ids unique
  /// across restarts and across pods.
  std::uint64_t trace_id_base_ = 0;
};

}  // namespace trustddl::serve
