// Party-side inference server: executes the model owner's batch
// manifests over one SecureModel.
//
// For each manifest the party collects the listed clients' input share
// triples, row-concatenates them into one coalesced batch, runs a
// single SecureModel::forward (one set of protocol rounds for the
// whole batch — the deferred-opening scheduler makes rounds nearly
// independent of row count), then slices the probability shares back
// per request and returns each client its rows.
//
// Degradation: a missing/garbled client input is substituted with a
// zero share after `ServeConfig::input_wait` — the party stays in
// lockstep and the client reconstructs its answer from the other two
// parties' result shares (2-of-3).  The fault knobs in ServerOptions
// exist for tests and CI: `corrupt_results` turns the party Byzantine
// at the serving edge, `max_batches` crashes it mid-service.
#pragma once

#include <cstdint>

#include "core/actors.hpp"
#include "core/secure_model.hpp"
#include "core/triple_pipeline.hpp"
#include "serve/batch_queue.hpp"
#include "serve/scheduler.hpp"

namespace trustddl::serve {

struct ServerOptions {
  ServeConfig serve;
  /// Byzantine fault injection: offset every result-share component so
  /// the share still parses but reconstructs wrong at this party —
  /// clients must out-vote it via robust reconstruction.
  bool corrupt_results = false;
  /// Crash fault injection: stop serving (without the polite owner
  /// stop) after this many executed batches; 0 = serve until shutdown.
  std::size_t max_batches = 0;
  /// How long a party waits for the model owner's dealer responses.
  /// The generous default covers multi-process slack; chaos harnesses
  /// shorten it so parties stranded by a killed owner exit promptly.
  std::chrono::milliseconds owner_link_timeout{60000};
};

class InferenceServer {
 public:
  InferenceServer(int party, net::Endpoint endpoint, ServerOptions options);

  /// Attach the offline/online preprocessing pipeline (DESIGN.md §10).
  /// While waiting for the next manifest the server tops the triple
  /// stores up instead of idling, and after each executed batch it
  /// raises the per-shape targets from the batch's demand so repeat
  /// batch sizes pop prefetched material.  `spec` is needed for the
  /// demand profile; both must outlive run().
  void set_pipeline(core::TriplePipeline* pipeline,
                    const nn::ModelSpec* spec) {
    pipeline_ = pipeline;
    spec_ = spec;
  }

  /// Serve manifests until the owner's shutdown manifest (returns
  /// true) or the max_batches crash point (returns false).
  bool run(core::SecureModel& model, core::SecureExecContext& ctx,
           std::size_t input_features);

  std::size_t batches_executed() const { return batches_; }

 private:
  int party_;
  net::Endpoint endpoint_;
  ServerOptions options_;
  std::size_t batches_ = 0;
  core::TriplePipeline* pipeline_ = nullptr;
  const nn::ModelSpec* spec_ = nullptr;
};

/// Full serving actor bodies, mirroring core/actors.hpp: identical
/// EngineConfig-derived seeds/contexts in-process and multi-process.

/// Computing party: receive parameter shares, then serve batches.
/// Returns the party's detection log.  `batches_out`, if non-null,
/// receives the number of batches executed.
mpc::DetectionLog serve_computing_party_body(
    const nn::ModelSpec& spec, const core::EngineConfig& config,
    std::size_t param_count, int party, net::Endpoint endpoint,
    const ServerOptions& options, std::size_t* batches_out = nullptr);

/// Model owner: share parameters, then run the owner service (unary/
/// collective requests) and the batch scheduler side by side until the
/// parties stop.  `stats_out`, if non-null, receives the scheduler's
/// request ledger.
void serve_model_owner_body(const nn::ModelSpec& spec,
                            const core::EngineConfig& config,
                            nn::Sequential& model, net::Endpoint endpoint,
                            const ServeConfig& serve_config, int num_clients,
                            SchedulerStats* stats_out = nullptr);

}  // namespace trustddl::serve
