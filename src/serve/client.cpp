#include "serve/client.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <thread>

#include "common/logging.hpp"
#include "mpc/robust_reconstruct.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace trustddl::serve {
namespace {

constexpr const char* kLog = "serve.client";

std::vector<std::size_t> argmax_rows(const RealTensor& probabilities) {
  std::vector<std::size_t> labels(probabilities.rows());
  for (std::size_t row = 0; row < probabilities.rows(); ++row) {
    std::size_t best = 0;
    for (std::size_t col = 1; col < probabilities.cols(); ++col) {
      if (probabilities.at(row, col) > probabilities.at(row, best)) {
        best = col;
      }
    }
    labels[row] = best;
  }
  return labels;
}

}  // namespace

InferenceClient::InferenceClient(net::Endpoint endpoint,
                                 ClientOptions options)
    : endpoint_(endpoint), options_(options), rng_(options.seed) {
  TRUSTDDL_REQUIRE(endpoint_.id() >= kFirstClientId,
                   "serve: client endpoint must use a client actor id");
}

std::uint64_t InferenceClient::submit(const RealTensor& images) {
  TRUSTDDL_REQUIRE(images.rank() == 2 && images.rows() >= 1,
                   "serve: submit expects a non-empty [rows, features] "
                   "tensor");
  std::uint64_t seq = 0;
  std::array<mpc::PartyShare, mpc::kNumParties> views;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_++;
    views = mpc::share_secret(to_ring(images, options_.frac_bits), rng_);
  }
  // Input shares first, then the admission notice: the manifest a
  // party acts on is usually sent after the shares already sit in its
  // mailbox.  (Reordering is still harmless — parties wait input_wait
  // per entry.)
  for (int party = 0; party < mpc::kNumParties; ++party) {
    endpoint_.send(party, input_tag(seq),
                   encode_share(views[static_cast<std::size_t>(party)]));
  }
  RequestNotice notice;
  notice.seq = seq;
  notice.rows = images.rows();
  notice.deadline_ms =
      static_cast<std::uint64_t>(options_.deadline.count());
  endpoint_.send(core::kModelOwner, notice_tag(seq), encode_notice(notice));
  if (obs::tracing_enabled()) {
    const obs::CorrelationScope corr(request_correlation(seq));
    obs::trace_instant("serve.submit", static_cast<int>(endpoint_.id()), seq,
                       "\"rows\": " + std::to_string(images.rows()));
  }
  return seq;
}

std::string InferenceClient::request_correlation(std::uint64_t seq) const {
  return "req:" + std::to_string(endpoint_.id()) + ":" +
         std::to_string(seq);
}

InferenceResult InferenceClient::await(std::uint64_t seq, std::size_t rows) {
  const auto start = std::chrono::steady_clock::now();
  std::array<std::optional<mpc::PartyShare>, mpc::kNumParties> triples;
  int responders = 0;
  std::optional<std::chrono::steady_clock::time_point> second_arrival;
  InferenceResult result;

  while (true) {
    Bytes payload;
    for (int party = 0; party < mpc::kNumParties; ++party) {
      const auto slot = static_cast<std::size_t>(party);
      if (!triples[slot] &&
          endpoint_.try_recv(party, result_tag(seq), payload)) {
        try {
          mpc::PartyShare share = decode_share(std::move(payload));
          TRUSTDDL_REQUIRE(share.shape().size() == 2 &&
                               share.shape()[0] == rows,
                           "serve: result share row mismatch");
          triples[slot] = std::move(share);
          if (obs::tracing_enabled()) {
            const obs::CorrelationScope corr(request_correlation(seq));
            obs::trace_instant("serve.result",
                               static_cast<int>(endpoint_.id()), seq,
                               "\"from\": " + std::to_string(party));
          }
          if (++responders == 2) {
            second_arrival = std::chrono::steady_clock::now();
          }
        } catch (const Error& error) {
          // A malformed frame counts as no answer from that party.
          TRUSTDDL_LOG_WARN(kLog)
              << "client " << endpoint_.id() << " seq " << seq
              << ": discarding garbled result from party " << party << " ("
              << error.what() << ")";
        }
      }
    }
    if (endpoint_.try_recv(core::kModelOwner, control_tag(seq), payload)) {
      const ControlResponse control = decode_control(std::move(payload));
      result.status = control.status;
      result.responders = responders;
      return result;
    }
    const auto now = std::chrono::steady_clock::now();
    if (responders == mpc::kNumParties) {
      break;
    }
    if (responders >= 2 && now - *second_arrival >=
                               options_.straggler_grace) {
      break;
    }
    if (now - start >= options_.response_timeout) {
      if (responders >= 2) {
        break;
      }
      result.status = Status::kDeadlineMissed;
      result.responders = responders;
      return result;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  mpc::ReconstructReport report;
  const RingTensor ring =
      mpc::robust_reconstruct(triples, options_.dist_tolerance, &report);
  result.status = Status::kOk;
  result.probabilities = to_real(ring, options_.frac_bits);
  result.labels = argmax_rows(result.probabilities);
  result.responders = responders;
  result.anomaly = report.anomaly;
  result.suspect = report.suspect;
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  obs::observe("serve.e2e.us",
               static_cast<std::uint64_t>(elapsed.count()));
  return result;
}

InferenceResult InferenceClient::infer(const RealTensor& images) {
  auto backoff = options_.retry_backoff;
  for (int attempt = 0;; ++attempt) {
    const std::uint64_t start_us = obs::now_us();
    const std::uint64_t seq = submit(images);
    InferenceResult result = await(seq, images.rows());
    result.attempts = attempt + 1;
    if (obs::tracing_enabled()) {
      // The client-observed end-to-end span merge_traces.py attributes
      // against the owner's queue_us and the parties' compute spans.
      obs::Tracer::global().emit(
          "span", "serve.request", static_cast<int>(endpoint_.id()), seq,
          start_us, obs::now_us() - start_us,
          "\"corr\": \"" + request_correlation(seq) + "\", \"status\": \"" +
              status_name(result.status) +
              "\", \"rows\": " + std::to_string(images.rows()) +
              ", \"attempt\": " + std::to_string(attempt + 1));
    }
    if (result.status == Status::kRejected &&
        attempt < options_.max_retries) {
      obs::count("serve.client.retries");
      // Jittered exponential backoff: sleep uniformly within
      // [backoff/2, backoff] so rejected cohorts (e.g. a pod's worth
      // of clients failing over at once) desynchronize instead of
      // re-slamming the scheduler in lockstep.
      const auto capped = std::min(backoff, options_.retry_backoff_max);
      auto sleep_ms = capped;
      if (capped.count() > 1) {
        const auto half =
            static_cast<std::uint64_t>(capped.count()) / 2;
        std::uint64_t jitter = 0;
        {
          std::lock_guard<std::mutex> lock(mu_);
          jitter = rng_.next_below(half + 1);
        }
        sleep_ms = std::chrono::milliseconds(
            static_cast<long>(half + jitter));
      }
      std::this_thread::sleep_for(sleep_ms);
      backoff *= 2;
      continue;
    }
    return result;
  }
}

void InferenceClient::stop() {
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_++;
  }
  RequestNotice notice;
  notice.kind = NoticeKind::kStop;
  notice.seq = seq;
  endpoint_.send(core::kModelOwner, notice_tag(seq), encode_notice(notice));
}

}  // namespace trustddl::serve
