// Backend-independent model specifications and factories.
//
// The same ModelSpec drives both the plaintext Sequential (CML) and
// the secure TrustDDL engine, so Fig. 2 compares identical
// architectures.  mnist_cnn_spec() is the paper's Table I network.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/model.hpp"
#include "nn/layers.hpp"
#include "numeric/conv.hpp"

namespace trustddl::nn {

struct LayerSpec {
  enum class Kind { kConv, kDense, kRelu, kSoftmax, kMaxPool };
  Kind kind = Kind::kRelu;
  ConvSpec conv;            ///< for kConv
  PoolSpec pool;            ///< for kMaxPool
  std::size_t in = 0;       ///< for kDense
  std::size_t out = 0;      ///< for kDense

  static LayerSpec make_conv(const ConvSpec& spec) {
    LayerSpec layer;
    layer.kind = Kind::kConv;
    layer.conv = spec;
    return layer;
  }
  static LayerSpec make_dense(std::size_t in, std::size_t out) {
    LayerSpec layer;
    layer.kind = Kind::kDense;
    layer.in = in;
    layer.out = out;
    return layer;
  }
  static LayerSpec make_relu() { return LayerSpec{}; }
  static LayerSpec make_softmax() {
    LayerSpec layer;
    layer.kind = Kind::kSoftmax;
    return layer;
  }
  static LayerSpec make_maxpool(const PoolSpec& spec) {
    LayerSpec layer;
    layer.kind = Kind::kMaxPool;
    layer.pool = spec;
    return layer;
  }
};

struct ModelSpec {
  std::string name;
  std::vector<LayerSpec> layers;
  std::size_t input_features = 0;
  std::size_t classes = 0;
};

/// The paper's Table I network:
///   Conv (28x28) -> (14x14x5), kernel 5x5, pad 2, 5 channels
///   ReLU(980) -> FC 980->100 -> ReLU(100) -> FC 100->10 -> Softmax.
ModelSpec mnist_cnn_spec();

/// A smaller MLP (784 -> 64 -> 10) for fast tests and examples.
ModelSpec mnist_mlp_spec();

/// A pooled variant of the Table I network (extension beyond the
/// paper): Conv 5x5 pad 2 stride 1 -> ReLU -> MaxPool 2x2 -> FC
/// 980->100 -> ReLU -> FC 100->10 -> Softmax.  Max pooling runs on
/// SecComp-BT comparisons in the secure engine.
ModelSpec mnist_cnn_pool_spec();

/// A down-scaled CNN (12x12 input) for integration tests where the
/// full Table I network would be too slow under MPC.
ModelSpec tiny_cnn_spec();

/// The image shape a spec's input rows must have.  Conv-first models
/// pin the exact height x width; dense-first models only need
/// height * width == input_features, reported as the squarest
/// factoring (784 -> 28x28).  Drives the synthetic-data generator so
/// CLIs produce queries matching any --model, not just the 28x28
/// default.
struct InputGeometry {
  std::size_t height = 0;
  std::size_t width = 0;
};
InputGeometry input_geometry(const ModelSpec& spec);

/// Instantiate the plaintext model with the paper's initialization
/// (dense: N(0,1/n); conv: N(0,1/(kh*kw))).
Sequential build_model(const ModelSpec& spec, Rng& rng);

/// Validate that consecutive layer shapes agree; throws on mismatch.
void validate_spec(const ModelSpec& spec);

}  // namespace trustddl::nn
