// Plaintext neural-network layer interface (the CML baseline of
// Fig. 2 and the reference semantics the secure engine must match).
//
// Layers process batches: inputs are rank-2 tensors [batch, features].
// forward() caches whatever backward() needs; backward() consumes the
// gradient w.r.t. the layer output and returns the gradient w.r.t. the
// layer input, accumulating parameter gradients along the way.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "numeric/tensor.hpp"

namespace trustddl::nn {

/// A trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  RealTensor value;
  RealTensor grad;

  explicit Parameter(std::string parameter_name, RealTensor initial)
      : name(std::move(parameter_name)),
        value(std::move(initial)),
        grad(value.shape()) {}

  void zero_grad() { grad = RealTensor(value.shape()); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual RealTensor forward(const RealTensor& input) = 0;
  virtual RealTensor backward(const RealTensor& grad_output) = 0;

  /// Trainable parameters (empty for activation/shape layers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;

  /// Output feature count for a given input feature count (used for
  /// shape validation when assembling models).
  virtual std::size_t output_features(std::size_t input_features) const = 0;
};

}  // namespace trustddl::nn
