#include "nn/loss.hpp"

#include <cmath>

#include "common/error.hpp"

namespace trustddl::nn {

double cross_entropy(const RealTensor& probabilities,
                     const RealTensor& targets) {
  TRUSTDDL_REQUIRE(probabilities.same_shape(targets),
                   "cross_entropy: shape mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    if (targets[i] > 0.0) {
      total -= targets[i] * std::log(std::max(probabilities[i], 1e-12));
    }
  }
  return total / static_cast<double>(probabilities.rows());
}

RealTensor cross_entropy_softmax_grad(const RealTensor& probabilities,
                                      const RealTensor& targets) {
  TRUSTDDL_REQUIRE(probabilities.same_shape(targets),
                   "cross_entropy grad: shape mismatch");
  RealTensor grad = probabilities - targets;
  grad.scale_inplace(1.0 / static_cast<double>(probabilities.rows()));
  return grad;
}

double mean_squared_error(const RealTensor& predictions,
                          const RealTensor& targets) {
  TRUSTDDL_REQUIRE(predictions.same_shape(targets), "mse: shape mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const double diff = predictions[i] - targets[i];
    total += diff * diff;
  }
  return total / static_cast<double>(predictions.size());
}

RealTensor mean_squared_error_grad(const RealTensor& predictions,
                                   const RealTensor& targets) {
  TRUSTDDL_REQUIRE(predictions.same_shape(targets),
                   "mse grad: shape mismatch");
  RealTensor grad = predictions - targets;
  grad.scale_inplace(2.0 / static_cast<double>(predictions.size()));
  return grad;
}

RealTensor one_hot(const std::vector<std::size_t>& labels,
                   std::size_t classes) {
  RealTensor out(Shape{labels.size(), classes});
  for (std::size_t row = 0; row < labels.size(); ++row) {
    TRUSTDDL_REQUIRE(labels[row] < classes, "one_hot: label out of range");
    out.at(row, labels[row]) = 1.0;
  }
  return out;
}

}  // namespace trustddl::nn
