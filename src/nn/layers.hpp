// Concrete plaintext layers: fully connected, 2-D convolution (via
// im2col), ReLU and Softmax — the four layer types of the paper's
// Table I network.
#pragma once

#include "numeric/conv.hpp"
#include "nn/layer.hpp"

namespace trustddl::nn {

/// Fully connected layer: y = xW + b with x [batch, in], W [in, out].
/// Weights are initialized N(0, 1/in) as in the paper (§IV-A).
class DenseLayer final : public Layer {
 public:
  DenseLayer(std::size_t in_features, std::size_t out_features, Rng& rng);

  RealTensor forward(const RealTensor& input) override;
  RealTensor backward(const RealTensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "dense"; }
  std::size_t output_features(std::size_t) const override {
    return out_features_;
  }

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }
  Parameter& weights() { return weights_; }
  Parameter& bias() { return bias_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Parameter weights_;
  Parameter bias_;
  RealTensor cached_input_;
};

/// 2-D convolution via im2col + matmul.  Input rows are flattened
/// [in_channels * H * W] images; output rows are flattened
/// [out_channels * outH * outW] feature maps.  Weights are initialized
/// N(0, 1/(kh*kw)) as in the paper (§IV-A).
class ConvLayer final : public Layer {
 public:
  ConvLayer(const ConvSpec& spec, Rng& rng);

  RealTensor forward(const RealTensor& input) override;
  RealTensor backward(const RealTensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "conv"; }
  std::size_t output_features(std::size_t) const override {
    return spec_.out_channels * spec_.out_height() * spec_.out_width();
  }

  const ConvSpec& spec() const { return spec_; }
  Parameter& weights() { return weights_; }
  Parameter& bias() { return bias_; }

 private:
  ConvSpec spec_;
  Parameter weights_;  ///< [out_channels, in_channels*kh*kw]
  Parameter bias_;     ///< [out_channels]
  std::vector<RealTensor> cached_columns_;  ///< per-sample im2col
};

/// ReLU activation; caches the positive mask for backward.
class ReluLayer final : public Layer {
 public:
  RealTensor forward(const RealTensor& input) override;
  RealTensor backward(const RealTensor& grad_output) override;
  std::string name() const override { return "relu"; }
  std::size_t output_features(std::size_t input_features) const override {
    return input_features;
  }

 private:
  RealTensor cached_mask_;
};

/// Row-wise Softmax.  backward() applies the full Jacobian
/// (diag(p) - p pᵀ) so the layer composes with any loss; the fused
/// softmax+cross-entropy path in loss.hpp bypasses it.
class SoftmaxLayer final : public Layer {
 public:
  RealTensor forward(const RealTensor& input) override;
  RealTensor backward(const RealTensor& grad_output) override;
  std::string name() const override { return "softmax"; }
  std::size_t output_features(std::size_t input_features) const override {
    return input_features;
  }

 private:
  RealTensor cached_output_;
};

/// 2-D max pooling over [channels, H, W] feature maps flattened into
/// batch rows (an extension beyond the paper's Table I network; the
/// secure engine implements it with SecComp-BT comparisons).
struct PoolSpec {
  std::size_t channels = 1;
  std::size_t in_height = 0;
  std::size_t in_width = 0;
  std::size_t window = 2;  ///< window edge and stride (non-overlapping)

  std::size_t out_height() const { return in_height / window; }
  std::size_t out_width() const { return in_width / window; }
  std::size_t in_features() const { return channels * in_height * in_width; }
  std::size_t out_features() const {
    return channels * out_height() * out_width();
  }
  /// Flat input index of window element (wy, wx) of output pixel
  /// (channel, oy, ox).
  std::size_t input_index(std::size_t channel, std::size_t oy,
                          std::size_t ox, std::size_t wy,
                          std::size_t wx) const {
    return (channel * in_height + oy * window + wy) * in_width +
           ox * window + wx;
  }
};

class MaxPoolLayer final : public Layer {
 public:
  explicit MaxPoolLayer(const PoolSpec& spec) : spec_(spec) {}

  RealTensor forward(const RealTensor& input) override;
  RealTensor backward(const RealTensor& grad_output) override;
  std::string name() const override { return "maxpool"; }
  std::size_t output_features(std::size_t) const override {
    return spec_.out_features();
  }

  const PoolSpec& spec() const { return spec_; }

 private:
  PoolSpec spec_;
  /// Flat input index of each output's argmax, per sample.
  std::vector<std::vector<std::size_t>> cached_argmax_;
  std::size_t cached_batch_ = 0;
};

/// Numerically stable row-wise softmax (shared with the model owner's
/// outsourced computation in the secure engine).
RealTensor softmax_rows(const RealTensor& logits);

/// Jacobian-vector product of row-wise softmax: given the softmax
/// output p and upstream gradient g, returns p ⊙ (g - <g,p>) per row.
RealTensor softmax_backward_rows(const RealTensor& probabilities,
                                 const RealTensor& grad_output);

}  // namespace trustddl::nn
