#include "nn/layers.hpp"

#include <cmath>

#include "numeric/kernels.hpp"

namespace trustddl::nn {
namespace {

RealTensor gaussian_tensor(const Shape& shape, double stddev, Rng& rng) {
  RealTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_gaussian(0.0, stddev);
  }
  return out;
}

}  // namespace

DenseLayer::DenseLayer(std::size_t in_features, std::size_t out_features,
                       Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weights_("dense.W",
               gaussian_tensor(Shape{in_features, out_features},
                               std::sqrt(1.0 / static_cast<double>(
                                                   in_features)),
                               rng)),
      bias_("dense.b", RealTensor(Shape{1, out_features})) {}

RealTensor DenseLayer::forward(const RealTensor& input) {
  TRUSTDDL_REQUIRE(input.rank() == 2 && input.cols() == in_features_,
                   "dense: input shape mismatch");
  cached_input_ = input;
  RealTensor output = matmul(input, weights_.value);
  for (std::size_t row = 0; row < output.rows(); ++row) {
    for (std::size_t col = 0; col < output.cols(); ++col) {
      output.at(row, col) += bias_.value.at(0, col);
    }
  }
  return output;
}

RealTensor DenseLayer::backward(const RealTensor& grad_output) {
  TRUSTDDL_REQUIRE(grad_output.rank() == 2 &&
                       grad_output.cols() == out_features_,
                   "dense: grad shape mismatch");
  weights_.grad += matmul(transpose(cached_input_), grad_output);
  bias_.grad += sum_rows(grad_output);
  return matmul(grad_output, transpose(weights_.value));
}

std::vector<Parameter*> DenseLayer::parameters() {
  return {&weights_, &bias_};
}

ConvLayer::ConvLayer(const ConvSpec& spec, Rng& rng)
    : spec_(spec),
      weights_("conv.W",
               gaussian_tensor(
                   Shape{spec.out_channels,
                         spec.in_channels * spec.kernel_h * spec.kernel_w},
                   std::sqrt(1.0 / static_cast<double>(spec.kernel_h *
                                                       spec.kernel_w)),
                   rng)),
      bias_("conv.b", RealTensor(Shape{spec.out_channels})) {}

RealTensor ConvLayer::forward(const RealTensor& input) {
  const std::size_t in_size =
      spec_.in_channels * spec_.in_height * spec_.in_width;
  TRUSTDDL_REQUIRE(input.rank() == 2 && input.cols() == in_size,
                   "conv: input shape mismatch");
  const std::size_t batch = input.rows();
  const std::size_t out_pixels = spec_.out_height() * spec_.out_width();
  RealTensor output(Shape{batch, spec_.out_channels * out_pixels});
  cached_columns_.assign(batch, RealTensor());
  // Samples are independent: each writes its own output row and
  // cached-columns slot (pre-sized above, so no reallocation races).
  kernels::parallel_for(batch, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t sample = lo; sample < hi; ++sample) {
      RealTensor image(Shape{in_size});
      for (std::size_t i = 0; i < in_size; ++i) {
        image[i] = input.at(sample, i);
      }
      RealTensor columns = im2col(image, spec_);
      // feature_maps: [out_channels, outH*outW]
      const RealTensor feature_maps = matmul(weights_.value, columns);
      cached_columns_[sample] = std::move(columns);
      for (std::size_t channel = 0; channel < spec_.out_channels; ++channel) {
        for (std::size_t pixel = 0; pixel < out_pixels; ++pixel) {
          output.at(sample, channel * out_pixels + pixel) =
              feature_maps.at(channel, pixel) + bias_.value[channel];
        }
      }
    }
  });
  return output;
}

RealTensor ConvLayer::backward(const RealTensor& grad_output) {
  const std::size_t batch = grad_output.rows();
  TRUSTDDL_REQUIRE(batch == cached_columns_.size(),
                   "conv: backward before forward");
  const std::size_t out_pixels = spec_.out_height() * spec_.out_width();
  const std::size_t in_size =
      spec_.in_channels * spec_.in_height * spec_.in_width;
  RealTensor grad_input(Shape{batch, in_size});
  for (std::size_t sample = 0; sample < batch; ++sample) {
    RealTensor grad_maps(Shape{spec_.out_channels, out_pixels});
    for (std::size_t channel = 0; channel < spec_.out_channels; ++channel) {
      for (std::size_t pixel = 0; pixel < out_pixels; ++pixel) {
        const double g =
            grad_output.at(sample, channel * out_pixels + pixel);
        grad_maps.at(channel, pixel) = g;
        bias_.grad[channel] += g;
      }
    }
    weights_.grad += matmul(
        grad_maps, transpose(cached_columns_[sample]));
    const RealTensor grad_columns =
        matmul(transpose(weights_.value), grad_maps);
    const RealTensor grad_image = col2im(grad_columns, spec_);
    for (std::size_t i = 0; i < in_size; ++i) {
      grad_input.at(sample, i) = grad_image[i];
    }
  }
  return grad_input;
}

std::vector<Parameter*> ConvLayer::parameters() {
  return {&weights_, &bias_};
}

RealTensor ReluLayer::forward(const RealTensor& input) {
  cached_mask_ = RealTensor(input.shape());
  RealTensor output(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const bool positive = input[i] > 0.0;
    cached_mask_[i] = positive ? 1.0 : 0.0;
    output[i] = positive ? input[i] : 0.0;
  }
  return output;
}

RealTensor ReluLayer::backward(const RealTensor& grad_output) {
  TRUSTDDL_REQUIRE(grad_output.same_shape(cached_mask_),
                   "relu: backward before forward");
  return hadamard(grad_output, cached_mask_);
}

RealTensor MaxPoolLayer::forward(const RealTensor& input) {
  TRUSTDDL_REQUIRE(input.rank() == 2 && input.cols() == spec_.in_features(),
                   "maxpool: input shape mismatch");
  TRUSTDDL_REQUIRE(spec_.in_height % spec_.window == 0 &&
                       spec_.in_width % spec_.window == 0,
                   "maxpool: window must tile the input");
  const std::size_t batch = input.rows();
  cached_batch_ = batch;
  cached_argmax_.assign(batch,
                        std::vector<std::size_t>(spec_.out_features()));
  RealTensor output(Shape{batch, spec_.out_features()});
  const std::size_t out_h = spec_.out_height();
  const std::size_t out_w = spec_.out_width();
  for (std::size_t sample = 0; sample < batch; ++sample) {
    std::size_t out_index = 0;
    for (std::size_t channel = 0; channel < spec_.channels; ++channel) {
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
          std::size_t best =
              spec_.input_index(channel, oy, ox, 0, 0);
          double best_value = input.at(sample, best);
          for (std::size_t wy = 0; wy < spec_.window; ++wy) {
            for (std::size_t wx = 0; wx < spec_.window; ++wx) {
              const std::size_t index =
                  spec_.input_index(channel, oy, ox, wy, wx);
              if (input.at(sample, index) > best_value) {
                best_value = input.at(sample, index);
                best = index;
              }
            }
          }
          output.at(sample, out_index) = best_value;
          cached_argmax_[sample][out_index] = best;
          ++out_index;
        }
      }
    }
  }
  return output;
}

RealTensor MaxPoolLayer::backward(const RealTensor& grad_output) {
  TRUSTDDL_REQUIRE(grad_output.rank() == 2 &&
                       grad_output.rows() == cached_batch_ &&
                       grad_output.cols() == spec_.out_features(),
                   "maxpool: backward before forward");
  RealTensor grad_input(Shape{cached_batch_, spec_.in_features()});
  for (std::size_t sample = 0; sample < cached_batch_; ++sample) {
    for (std::size_t out = 0; out < spec_.out_features(); ++out) {
      grad_input.at(sample, cached_argmax_[sample][out]) +=
          grad_output.at(sample, out);
    }
  }
  return grad_input;
}

RealTensor softmax_rows(const RealTensor& logits) {
  TRUSTDDL_REQUIRE(logits.rank() == 2, "softmax expects [batch, classes]");
  RealTensor output(logits.shape());
  for (std::size_t row = 0; row < logits.rows(); ++row) {
    double max_logit = logits.at(row, 0);
    for (std::size_t col = 1; col < logits.cols(); ++col) {
      max_logit = std::max(max_logit, logits.at(row, col));
    }
    double total = 0.0;
    for (std::size_t col = 0; col < logits.cols(); ++col) {
      const double value = std::exp(logits.at(row, col) - max_logit);
      output.at(row, col) = value;
      total += value;
    }
    for (std::size_t col = 0; col < logits.cols(); ++col) {
      output.at(row, col) /= total;
    }
  }
  return output;
}

RealTensor softmax_backward_rows(const RealTensor& probabilities,
                                 const RealTensor& grad_output) {
  TRUSTDDL_REQUIRE(probabilities.same_shape(grad_output),
                   "softmax backward: shape mismatch");
  RealTensor grad_input(probabilities.shape());
  for (std::size_t row = 0; row < probabilities.rows(); ++row) {
    double dot = 0.0;
    for (std::size_t col = 0; col < probabilities.cols(); ++col) {
      dot += grad_output.at(row, col) * probabilities.at(row, col);
    }
    for (std::size_t col = 0; col < probabilities.cols(); ++col) {
      grad_input.at(row, col) =
          probabilities.at(row, col) * (grad_output.at(row, col) - dot);
    }
  }
  return grad_input;
}

RealTensor SoftmaxLayer::forward(const RealTensor& input) {
  cached_output_ = softmax_rows(input);
  return cached_output_;
}

RealTensor SoftmaxLayer::backward(const RealTensor& grad_output) {
  return softmax_backward_rows(cached_output_, grad_output);
}

}  // namespace trustddl::nn
