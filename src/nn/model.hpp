// Sequential model container, SGD optimizer and the training loop of
// the centralized plaintext baseline (CML in Fig. 2).
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"
#include "nn/loss.hpp"

namespace trustddl::nn {

/// Plain stochastic gradient descent.
class SgdOptimizer {
 public:
  explicit SgdOptimizer(double learning_rate)
      : learning_rate_(learning_rate) {}

  void step(const std::vector<Parameter*>& parameters) const;
  double learning_rate() const { return learning_rate_; }

 private:
  double learning_rate_;
};

/// A stack of layers ending (for classification) in Softmax.
class Sequential {
 public:
  Sequential() = default;

  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  /// Forward pass through every layer.
  RealTensor forward(const RealTensor& input);

  /// Backward pass; returns gradient w.r.t. the model input.
  RealTensor backward(const RealTensor& grad_output);

  std::vector<Parameter*> parameters();
  void zero_grads();

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t index) { return *layers_[index]; }
  const Layer& layer(std::size_t index) const { return *layers_[index]; }

  /// One SGD step on (inputs, one-hot targets); the model must end in
  /// Softmax (the fused cross-entropy gradient bypasses its backward).
  /// Returns the batch cross-entropy.
  double train_step(const RealTensor& inputs, const RealTensor& targets,
                    const SgdOptimizer& optimizer);

  /// Predicted class per row.
  std::vector<std::size_t> predict(const RealTensor& inputs);

  /// Fraction of rows whose argmax matches the label.
  double accuracy(const RealTensor& inputs,
                  const std::vector<std::size_t>& labels);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace trustddl::nn
