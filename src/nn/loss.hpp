// Loss functions.  Training uses the fused softmax + cross-entropy
// gradient p - y, which is also the form TrustDDL computes securely:
// the model owner returns softmax probabilities as shares, and the
// shared label is subtracted locally (paper §III-C).
#pragma once

#include "numeric/tensor.hpp"

namespace trustddl::nn {

/// Mean cross-entropy over the batch.  `probabilities` are softmax
/// outputs, `targets` are one-hot rows.
double cross_entropy(const RealTensor& probabilities,
                     const RealTensor& targets);

/// Gradient of mean cross-entropy w.r.t. the LOGITS when the final
/// layer is softmax: (p - y) / batch.
RealTensor cross_entropy_softmax_grad(const RealTensor& probabilities,
                                      const RealTensor& targets);

/// Mean squared error and its gradient (used by property tests and
/// one example, not by the paper's training loop).
double mean_squared_error(const RealTensor& predictions,
                          const RealTensor& targets);
RealTensor mean_squared_error_grad(const RealTensor& predictions,
                                   const RealTensor& targets);

/// One-hot encode labels into [batch, classes] rows.
RealTensor one_hot(const std::vector<std::size_t>& labels,
                   std::size_t classes);

}  // namespace trustddl::nn
