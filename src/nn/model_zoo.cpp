#include "nn/model_zoo.hpp"

#include <cmath>

#include "common/error.hpp"
#include "nn/layers.hpp"

namespace trustddl::nn {

ModelSpec mnist_cnn_spec() {
  ModelSpec spec;
  spec.name = "mnist_cnn (paper Table I)";
  spec.input_features = 28 * 28;
  spec.classes = 10;
  ConvSpec conv;
  conv.in_channels = 1;
  conv.in_height = 28;
  conv.in_width = 28;
  conv.out_channels = 5;
  conv.kernel_h = 5;
  conv.kernel_w = 5;
  conv.pad = 2;
  conv.stride = 2;  // (28x28) -> (14x14x5) = 980 features
  spec.layers = {
      LayerSpec::make_conv(conv),     LayerSpec::make_relu(),
      LayerSpec::make_dense(980, 100), LayerSpec::make_relu(),
      LayerSpec::make_dense(100, 10),  LayerSpec::make_softmax(),
  };
  validate_spec(spec);
  return spec;
}

ModelSpec mnist_mlp_spec() {
  ModelSpec spec;
  spec.name = "mnist_mlp";
  spec.input_features = 28 * 28;
  spec.classes = 10;
  spec.layers = {
      LayerSpec::make_dense(784, 64), LayerSpec::make_relu(),
      LayerSpec::make_dense(64, 10),  LayerSpec::make_softmax(),
  };
  validate_spec(spec);
  return spec;
}

ModelSpec mnist_cnn_pool_spec() {
  ModelSpec spec;
  spec.name = "mnist_cnn_pool";
  spec.input_features = 28 * 28;
  spec.classes = 10;
  ConvSpec conv;
  conv.in_channels = 1;
  conv.in_height = 28;
  conv.in_width = 28;
  conv.out_channels = 5;
  conv.kernel_h = 5;
  conv.kernel_w = 5;
  conv.pad = 2;
  conv.stride = 1;  // (28x28) -> (28x28x5)
  PoolSpec pool;
  pool.channels = 5;
  pool.in_height = 28;
  pool.in_width = 28;
  pool.window = 2;  // -> (14x14x5) = 980
  spec.layers = {
      LayerSpec::make_conv(conv),      LayerSpec::make_relu(),
      LayerSpec::make_maxpool(pool),   LayerSpec::make_dense(980, 100),
      LayerSpec::make_relu(),          LayerSpec::make_dense(100, 10),
      LayerSpec::make_softmax(),
  };
  validate_spec(spec);
  return spec;
}

ModelSpec tiny_cnn_spec() {
  ModelSpec spec;
  spec.name = "tiny_cnn";
  spec.input_features = 12 * 12;
  spec.classes = 4;
  ConvSpec conv;
  conv.in_channels = 1;
  conv.in_height = 12;
  conv.in_width = 12;
  conv.out_channels = 2;
  conv.kernel_h = 3;
  conv.kernel_w = 3;
  conv.pad = 1;
  conv.stride = 2;  // (12x12) -> (6x6x2) = 72 features
  spec.layers = {
      LayerSpec::make_conv(conv),    LayerSpec::make_relu(),
      LayerSpec::make_dense(72, 16), LayerSpec::make_relu(),
      LayerSpec::make_dense(16, 4),  LayerSpec::make_softmax(),
  };
  validate_spec(spec);
  return spec;
}

InputGeometry input_geometry(const ModelSpec& spec) {
  for (const LayerSpec& layer : spec.layers) {
    if (layer.kind == LayerSpec::Kind::kConv) {
      return {layer.conv.in_height, layer.conv.in_width};
    }
    if (layer.kind == LayerSpec::Kind::kDense) {
      break;
    }
  }
  // Dense-first: any factoring works; pick the squarest.
  for (std::size_t h = static_cast<std::size_t>(
           std::sqrt(static_cast<double>(spec.input_features)));
       h > 1; --h) {
    if (spec.input_features % h == 0) {
      return {h, spec.input_features / h};
    }
  }
  return {1, spec.input_features};
}

Sequential build_model(const ModelSpec& spec, Rng& rng) {
  validate_spec(spec);
  Sequential model;
  for (const LayerSpec& layer : spec.layers) {
    switch (layer.kind) {
      case LayerSpec::Kind::kConv:
        model.add(std::make_unique<ConvLayer>(layer.conv, rng));
        break;
      case LayerSpec::Kind::kDense:
        model.add(std::make_unique<DenseLayer>(layer.in, layer.out, rng));
        break;
      case LayerSpec::Kind::kRelu:
        model.add(std::make_unique<ReluLayer>());
        break;
      case LayerSpec::Kind::kSoftmax:
        model.add(std::make_unique<SoftmaxLayer>());
        break;
      case LayerSpec::Kind::kMaxPool:
        model.add(std::make_unique<MaxPoolLayer>(layer.pool));
        break;
    }
  }
  return model;
}

void validate_spec(const ModelSpec& spec) {
  TRUSTDDL_REQUIRE(!spec.layers.empty(), "model spec has no layers");
  std::size_t features = spec.input_features;
  for (const LayerSpec& layer : spec.layers) {
    switch (layer.kind) {
      case LayerSpec::Kind::kConv: {
        const std::size_t expected = layer.conv.in_channels *
                                     layer.conv.in_height *
                                     layer.conv.in_width;
        TRUSTDDL_REQUIRE(features == expected,
                         "conv layer input features mismatch: expected " +
                             std::to_string(expected) + ", got " +
                             std::to_string(features));
        features = layer.conv.out_channels * layer.conv.out_height() *
                   layer.conv.out_width();
        break;
      }
      case LayerSpec::Kind::kDense:
        TRUSTDDL_REQUIRE(features == layer.in,
                         "dense layer input features mismatch: expected " +
                             std::to_string(layer.in) + ", got " +
                             std::to_string(features));
        features = layer.out;
        break;
      case LayerSpec::Kind::kMaxPool:
        TRUSTDDL_REQUIRE(features == layer.pool.in_features(),
                         "maxpool layer input features mismatch");
        TRUSTDDL_REQUIRE(layer.pool.in_height % layer.pool.window == 0 &&
                             layer.pool.in_width % layer.pool.window == 0,
                         "maxpool window must tile the input");
        features = layer.pool.out_features();
        break;
      case LayerSpec::Kind::kRelu:
      case LayerSpec::Kind::kSoftmax:
        break;
    }
  }
  TRUSTDDL_REQUIRE(features == spec.classes,
                   "model output features do not match class count");
  TRUSTDDL_REQUIRE(spec.layers.back().kind == LayerSpec::Kind::kSoftmax,
                   "classification models must end in Softmax");
}

}  // namespace trustddl::nn
