#include "nn/model.hpp"

#include "nn/layers.hpp"

namespace trustddl::nn {

void SgdOptimizer::step(const std::vector<Parameter*>& parameters) const {
  for (Parameter* parameter : parameters) {
    for (std::size_t i = 0; i < parameter->value.size(); ++i) {
      parameter->value[i] -= learning_rate_ * parameter->grad[i];
    }
    parameter->zero_grad();
  }
}

RealTensor Sequential::forward(const RealTensor& input) {
  RealTensor activation = input;
  for (auto& layer : layers_) {
    activation = layer->forward(activation);
  }
  return activation;
}

RealTensor Sequential::backward(const RealTensor& grad_output) {
  RealTensor grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> all;
  for (auto& layer : layers_) {
    for (Parameter* parameter : layer->parameters()) {
      all.push_back(parameter);
    }
  }
  return all;
}

void Sequential::zero_grads() {
  for (Parameter* parameter : parameters()) {
    parameter->zero_grad();
  }
}

double Sequential::train_step(const RealTensor& inputs,
                              const RealTensor& targets,
                              const SgdOptimizer& optimizer) {
  TRUSTDDL_REQUIRE(!layers_.empty(), "train_step on empty model");
  TRUSTDDL_REQUIRE(dynamic_cast<SoftmaxLayer*>(layers_.back().get()) !=
                       nullptr,
                   "train_step expects a Softmax output layer");
  const RealTensor probabilities = forward(inputs);
  const double loss = cross_entropy(probabilities, targets);
  const RealTensor grad_logits =
      cross_entropy_softmax_grad(probabilities, targets);
  // The fused gradient is w.r.t. the logits, so skip the softmax
  // layer's backward and propagate from the layer below it.
  RealTensor grad = grad_logits;
  for (std::size_t i = layers_.size() - 1; i-- > 0;) {
    grad = layers_[i]->backward(grad);
  }
  optimizer.step(parameters());
  return loss;
}

std::vector<std::size_t> Sequential::predict(const RealTensor& inputs) {
  const RealTensor outputs = forward(inputs);
  std::vector<std::size_t> labels(outputs.rows());
  for (std::size_t row = 0; row < outputs.rows(); ++row) {
    std::size_t best = 0;
    for (std::size_t col = 1; col < outputs.cols(); ++col) {
      if (outputs.at(row, col) > outputs.at(row, best)) {
        best = col;
      }
    }
    labels[row] = best;
  }
  return labels;
}

double Sequential::accuracy(const RealTensor& inputs,
                            const std::vector<std::size_t>& labels) {
  TRUSTDDL_REQUIRE(inputs.rows() == labels.size(),
                   "accuracy: label count mismatch");
  const auto predictions = predict(inputs);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace trustddl::nn
