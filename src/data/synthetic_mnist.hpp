// Procedural MNIST substitute.
//
// The paper evaluates on MNIST (60k train / 10k test, 28x28 grayscale,
// values normalized to [0,1]).  The dataset files are not available in
// this offline environment, so we synthesize an equivalent task: ten
// digit glyph classes rendered from 5x7 bitmap fonts with randomized
// affine distortion (shift, scale, rotation, shear), stroke intensity
// jitter and additive Gaussian noise.  Tensor shapes, value range and
// class count match MNIST exactly, so every code path the paper's
// experiments exercise (conv over 28x28, 980-unit ReLU, 10-way
// softmax) is exercised identically; a small CNN reaches high test
// accuracy within a few epochs, which is what Fig. 2 requires.
// See DESIGN.md §5 for the substitution rationale.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "numeric/tensor.hpp"

namespace trustddl::data {

/// A labelled image set: images are [count, height*width] in [0,1].
struct Dataset {
  RealTensor images;
  std::vector<std::size_t> labels;

  std::size_t size() const { return labels.size(); }
};

struct SyntheticMnistConfig {
  std::size_t train_count = 2000;
  std::size_t test_count = 500;
  std::size_t height = 28;
  std::size_t width = 28;
  std::size_t classes = 10;
  double noise_stddev = 0.05;
  double max_shift = 2.0;     ///< pixels
  double max_rotation = 0.12;  ///< radians
  std::uint64_t seed = 7;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Generate a train/test split with disjoint random streams.
TrainTestSplit generate_synthetic_mnist(const SyntheticMnistConfig& config);

/// Render one image of the given class (exposed for tests/examples).
RealTensor render_digit(std::size_t digit, const SyntheticMnistConfig& config,
                        Rng& rng);

/// Copy rows [start, start+count) into a batch tensor + labels.
Dataset slice(const Dataset& dataset, std::size_t start, std::size_t count);

/// Shuffled index order for one epoch.
std::vector<std::size_t> shuffled_indices(std::size_t count, Rng& rng);

/// Gather arbitrary rows into a batch.
Dataset gather(const Dataset& dataset,
               const std::vector<std::size_t>& indices, std::size_t start,
               std::size_t count);

}  // namespace trustddl::data
