#include "data/mnist_idx.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace trustddl::data {
namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializationError("mnist: cannot open " + path);
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

/// Sequential big-endian reader over a loaded idx file.
class IdxReader {
 public:
  IdxReader(const std::vector<std::uint8_t>& bytes, const std::string& path)
      : bytes_(bytes), path_(path) {}

  std::uint32_t read_u32() {
    if (offset_ + 4 > bytes_.size()) {
      throw SerializationError("mnist: truncated header in " + path_);
    }
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value = (value << 8) | bytes_[offset_++];
    }
    return value;
  }

  const std::uint8_t* take_payload(std::size_t count) {
    if (offset_ + count > bytes_.size()) {
      throw SerializationError("mnist: truncated payload in " + path_);
    }
    const std::uint8_t* data = bytes_.data() + offset_;
    offset_ += count;
    return data;
  }

  void expect_end() const {
    if (offset_ != bytes_.size()) {
      throw SerializationError("mnist: trailing bytes in " + path_);
    }
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::string path_;
  std::size_t offset_ = 0;
};

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

Dataset truncate(const Dataset& dataset, std::size_t count) {
  if (count == 0 || count >= dataset.size()) {
    return dataset;
  }
  return slice(dataset, 0, count);
}

}  // namespace

Dataset load_idx_pair(const std::string& images_path,
                      const std::string& labels_path) {
  const auto image_bytes = read_file(images_path);
  IdxReader images(image_bytes, images_path);
  if (images.read_u32() != kIdxImagesMagic) {
    throw SerializationError("mnist: bad image magic in " + images_path);
  }
  const std::size_t count = images.read_u32();
  const std::size_t height = images.read_u32();
  const std::size_t width = images.read_u32();
  if (count == 0 || height == 0 || width == 0) {
    throw SerializationError("mnist: empty dimension in " + images_path);
  }

  const auto label_bytes = read_file(labels_path);
  IdxReader labels(label_bytes, labels_path);
  if (labels.read_u32() != kIdxLabelsMagic) {
    throw SerializationError("mnist: bad label magic in " + labels_path);
  }
  if (labels.read_u32() != count) {
    throw SerializationError("mnist: image/label count mismatch between " +
                             images_path + " and " + labels_path);
  }

  Dataset dataset;
  const std::size_t pixels = height * width;
  const std::uint8_t* image_data = images.take_payload(count * pixels);
  images.expect_end();
  dataset.images = RealTensor(Shape{count, pixels});
  for (std::size_t i = 0; i < count * pixels; ++i) {
    dataset.images[i] = static_cast<double>(image_data[i]) / 255.0;
  }

  const std::uint8_t* label_data = labels.take_payload(count);
  labels.expect_end();
  dataset.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (label_data[i] > 9) {
      throw SerializationError("mnist: label out of range in " + labels_path);
    }
    dataset.labels[i] = label_data[i];
  }
  return dataset;
}

bool mnist_files_present(const std::string& dir) {
  if (dir.empty()) {
    return false;
  }
  const std::string base = dir + "/";
  return file_exists(base + kMnistTrainImages) &&
         file_exists(base + kMnistTrainLabels) &&
         file_exists(base + kMnistTestImages) &&
         file_exists(base + kMnistTestLabels);
}

TrainTestSplit load_mnist_dir(const std::string& dir) {
  const std::string base = dir + "/";
  TrainTestSplit split;
  split.train = load_idx_pair(base + kMnistTrainImages,
                              base + kMnistTrainLabels);
  split.test =
      load_idx_pair(base + kMnistTestImages, base + kMnistTestLabels);
  return split;
}

TrainTestSplit load_mnist_or_synthetic(const std::string& dir,
                                       const SyntheticMnistConfig& config) {
  if (!mnist_files_present(dir)) {
    return generate_synthetic_mnist(config);
  }
  TrainTestSplit split = load_mnist_dir(dir);
  split.train = truncate(split.train, config.train_count);
  split.test = truncate(split.test, config.test_count);
  return split;
}

}  // namespace trustddl::data
