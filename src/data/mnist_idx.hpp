// Reader for the original MNIST idx file format (the four files
// distributed by Lecun et al.: train/t10k images + labels).
//
// The format is self-describing: a big-endian magic (0x00000803 for
// rank-3 u8 image files, 0x00000801 for rank-1 u8 label files)
// followed by big-endian u32 dimensions, then the raw bytes.  Parsed
// with no external dependencies; pixels are normalized to [0,1] so a
// loaded Dataset is a drop-in replacement for the synthetic generator
// (same shapes, value range and class count — see DESIGN.md §5).
//
// load_mnist_or_synthetic() is the entry point the CLI uses: a real
// dataset directory when one is supplied and complete, the procedural
// substitute otherwise.
#pragma once

#include <string>

#include "data/synthetic_mnist.hpp"

namespace trustddl::data {

/// Expected magics (big-endian on the wire).
inline constexpr std::uint32_t kIdxImagesMagic = 2051;  // 0x00000803
inline constexpr std::uint32_t kIdxLabelsMagic = 2049;  // 0x00000801

/// Canonical file names inside an MNIST directory.
inline constexpr const char* kMnistTrainImages = "train-images-idx3-ubyte";
inline constexpr const char* kMnistTrainLabels = "train-labels-idx1-ubyte";
inline constexpr const char* kMnistTestImages = "t10k-images-idx3-ubyte";
inline constexpr const char* kMnistTestLabels = "t10k-labels-idx1-ubyte";

/// Parse one images + labels file pair.  Throws SerializationError on
/// a bad magic, truncated payload, trailing bytes or a count mismatch
/// between the two files.
Dataset load_idx_pair(const std::string& images_path,
                      const std::string& labels_path);

/// True when all four canonical files exist under `dir`.
bool mnist_files_present(const std::string& dir);

/// Load the canonical train/test split from `dir`.
TrainTestSplit load_mnist_dir(const std::string& dir);

/// Real MNIST from `dir` when it is non-empty and holds all four
/// files, truncated to config.train_count / config.test_count rows
/// (0 = keep everything); the synthetic substitute otherwise.
TrainTestSplit load_mnist_or_synthetic(const std::string& dir,
                                       const SyntheticMnistConfig& config);

}  // namespace trustddl::data
