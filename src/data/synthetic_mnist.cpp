#include "data/synthetic_mnist.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trustddl::data {
namespace {

/// 5x7 bitmap font for the ten digits; each row is 5 bits, MSB left.
constexpr std::uint8_t kDigitFont[10][7] = {
    {0x0e, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0e},  // 0
    {0x04, 0x0c, 0x04, 0x04, 0x04, 0x04, 0x0e},  // 1
    {0x0e, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1f},  // 2
    {0x1f, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0e},  // 3
    {0x02, 0x06, 0x0a, 0x12, 0x1f, 0x02, 0x02},  // 4
    {0x1f, 0x10, 0x1e, 0x01, 0x01, 0x11, 0x0e},  // 5
    {0x06, 0x08, 0x10, 0x1e, 0x11, 0x11, 0x0e},  // 6
    {0x1f, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08},  // 7
    {0x0e, 0x11, 0x11, 0x0e, 0x11, 0x11, 0x0e},  // 8
    {0x0e, 0x11, 0x11, 0x0f, 0x01, 0x02, 0x0c},  // 9
};

/// Bilinear sample of the glyph bitmap at fractional font coordinates
/// (gx in [0,5), gy in [0,7)); outside the glyph it is background.
double sample_glyph(std::size_t digit, double gx, double gy) {
  const auto pixel = [&](int ix, int iy) -> double {
    if (ix < 0 || ix >= 5 || iy < 0 || iy >= 7) {
      return 0.0;
    }
    return (kDigitFont[digit][iy] >> (4 - ix)) & 1 ? 1.0 : 0.0;
  };
  const int x0 = static_cast<int>(std::floor(gx));
  const int y0 = static_cast<int>(std::floor(gy));
  const double fx = gx - x0;
  const double fy = gy - y0;
  const double top = pixel(x0, y0) * (1 - fx) + pixel(x0 + 1, y0) * fx;
  const double bottom =
      pixel(x0, y0 + 1) * (1 - fx) + pixel(x0 + 1, y0 + 1) * fx;
  return top * (1 - fy) + bottom * fy;
}

Dataset generate(std::size_t count, const SyntheticMnistConfig& config,
                 Rng& rng) {
  Dataset dataset;
  dataset.images = RealTensor(
      Shape{count, config.height * config.width});
  dataset.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t digit = rng.next_below(config.classes);
    dataset.labels[i] = digit;
    const RealTensor image = render_digit(digit, config, rng);
    for (std::size_t p = 0; p < image.size(); ++p) {
      dataset.images.at(i, p) = image[p];
    }
  }
  return dataset;
}

}  // namespace

RealTensor render_digit(std::size_t digit, const SyntheticMnistConfig& config,
                        Rng& rng) {
  TRUSTDDL_REQUIRE(digit < 10, "render_digit: digit out of range");
  const double height = static_cast<double>(config.height);
  const double width = static_cast<double>(config.width);

  // Random affine distortion parameters per sample.
  const double scale = rng.next_double(0.92, 1.08);
  const double angle =
      rng.next_double(-config.max_rotation, config.max_rotation);
  const double shear = rng.next_double(-0.08, 0.08);
  const double shift_x = rng.next_double(-config.max_shift, config.max_shift);
  const double shift_y = rng.next_double(-config.max_shift, config.max_shift);
  const double intensity = rng.next_double(0.85, 1.0);

  // The glyph's 5x7 cell grid fills roughly 60% of the image.
  const double cell_w = width * 0.6 / 5.0 * scale;
  const double cell_h = height * 0.72 / 7.0 * scale;
  const double center_x = width / 2.0 + shift_x;
  const double center_y = height / 2.0 + shift_y;
  const double cos_a = std::cos(angle);
  const double sin_a = std::sin(angle);

  RealTensor image(Shape{config.height * config.width});
  for (std::size_t y = 0; y < config.height; ++y) {
    for (std::size_t x = 0; x < config.width; ++x) {
      // Inverse affine: image pixel -> glyph coordinates.
      const double dx = (static_cast<double>(x) + 0.5) - center_x;
      const double dy = (static_cast<double>(y) + 0.5) - center_y;
      const double rx = cos_a * dx + sin_a * dy;
      const double ry = -sin_a * dx + cos_a * dy;
      const double gx = rx / cell_w + shear * ry / cell_h + 2.5 - 0.5;
      const double gy = ry / cell_h + 3.5 - 0.5;
      double value = intensity * sample_glyph(digit, gx, gy);
      value += rng.next_gaussian(0.0, config.noise_stddev);
      image[y * config.width + x] = std::clamp(value, 0.0, 1.0);
    }
  }
  return image;
}

TrainTestSplit generate_synthetic_mnist(const SyntheticMnistConfig& config) {
  Rng master(config.seed);
  Rng train_rng = master.fork();
  Rng test_rng = master.fork();
  TrainTestSplit split;
  split.train = generate(config.train_count, config, train_rng);
  split.test = generate(config.test_count, config, test_rng);
  return split;
}

Dataset slice(const Dataset& dataset, std::size_t start, std::size_t count) {
  TRUSTDDL_REQUIRE(start + count <= dataset.size(),
                   "slice out of dataset bounds");
  Dataset out;
  const std::size_t features = dataset.images.cols();
  out.images = RealTensor(Shape{count, features});
  out.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.labels[i] = dataset.labels[start + i];
    for (std::size_t p = 0; p < features; ++p) {
      out.images.at(i, p) = dataset.images.at(start + i, p);
    }
  }
  return out;
}

std::vector<std::size_t> shuffled_indices(std::size_t count, Rng& rng) {
  std::vector<std::size_t> indices(count);
  for (std::size_t i = 0; i < count; ++i) {
    indices[i] = i;
  }
  for (std::size_t i = count; i > 1; --i) {
    std::swap(indices[i - 1], indices[rng.next_below(i)]);
  }
  return indices;
}

Dataset gather(const Dataset& dataset,
               const std::vector<std::size_t>& indices, std::size_t start,
               std::size_t count) {
  TRUSTDDL_REQUIRE(start + count <= indices.size(),
                   "gather out of index bounds");
  Dataset out;
  const std::size_t features = dataset.images.cols();
  out.images = RealTensor(Shape{count, features});
  out.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t row = indices[start + i];
    TRUSTDDL_REQUIRE(row < dataset.size(), "gather index out of range");
    out.labels[i] = dataset.labels[row];
    for (std::size_t p = 0; p < features; ++p) {
      out.images.at(i, p) = dataset.images.at(row, p);
    }
  }
  return out;
}

}  // namespace trustddl::data
