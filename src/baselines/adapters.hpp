// Framework adapters wrapping the TrustDDL engine.
//
// TrustDDL (HbC / malicious) rows of Table II use the engine directly;
// the SafeML row (the authors' predecessor framework, ICDMW'23) is the
// engine in crash-fault mode: replicated shares without commitments,
// plus the per-opening heartbeat round (see SecurityMode::kCrashFault).
#pragma once

#include <memory>

#include "baselines/framework.hpp"
#include "core/engine.hpp"

namespace trustddl::baselines {

class EngineFramework final : public Framework {
 public:
  /// `label` is the framework name printed in Table II.
  EngineFramework(std::string label, nn::ModelSpec spec,
                  core::EngineConfig config);

  std::string name() const override { return label_; }
  std::string adversary_model() const override {
    return mpc::to_string(config_.mode);
  }

  StepCost train(const RealTensor& images, const RealTensor& onehot,
                 double learning_rate, int steps) override;
  StepCost infer(const RealTensor& images, int repeats,
                 std::vector<std::size_t>* predictions = nullptr) override;

  core::TrustDdlEngine& engine() { return engine_; }

 private:
  std::string label_;
  core::EngineConfig config_;
  core::TrustDdlEngine engine_;
};

/// TrustDDL in the requested adversary model.
std::unique_ptr<Framework> make_trustddl(nn::ModelSpec spec,
                                         mpc::SecurityMode mode,
                                         std::uint64_t seed = 7);

/// SafeML: crash-fault-tolerant predecessor.
std::unique_ptr<Framework> make_safeml(nn::ModelSpec spec,
                                       std::uint64_t seed = 7);

}  // namespace trustddl::baselines
