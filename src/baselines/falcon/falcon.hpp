// Falcon-style baseline (Wagh et al. — PoPETs'21).
//
// Executable protocol model of Falcon's 3-party replicated secret
// sharing (RSS): a secret x is split into three additive components
// c0 + c1 + c2 and party i holds the pair (c_i, c_{i+1}).  Linear
// operations are local; multiplication costs local partial products
// plus ONE re-sharing message per party (zero-sharing masks derived
// from pairwise PRF keys), which is why Falcon's communication is far
// below Beaver-triple designs — the shape Table II shows.
//
// Semi-honest mode: single-copy opens and re-sharing.
// Malicious mode: Falcon detects and ABORTS (it cannot recover, unlike
// TrustDDL).  The model implements consistent opening (every opened
// component is received from both of its holders and compared),
// digest cross-checks on re-sharing messages, and an equal-size
// verification message per multiplication standing in for Falcon's
// triple-sacrifice traffic; any mismatch throws FalconAbort.
//
// ReLU uses the positive-multiplicative-mask sign opening and softmax
// is computed by a designated party on the reconstructed logits
// (cost-faithful simplifications shared across the baselines; see
// DESIGN.md §5).
#pragma once

#include <memory>

#include "baselines/framework.hpp"
#include "baselines/generic_net.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "numeric/fixed_point.hpp"
#include "net/network.hpp"

namespace trustddl::baselines::falcon {

/// Raised in malicious mode when a consistency check fails: Falcon
/// aborts, it does not recover.
class FalconAbort : public Error {
 public:
  explicit FalconAbort(const std::string& what) : Error(what) {}
};

/// RSS share pair (c_i, c_{i+1}) held by party i.
struct Share {
  RingTensor first;
  RingTensor second;
};

struct Context {
  net::Endpoint endpoint;
  int party = 0;
  int frac_bits = fx::kDefaultFracBits;
  bool malicious = false;
  /// Pairwise PRF streams: rng_next with party i+1, rng_prev with i-1.
  Rng rng_next;
  Rng rng_prev;
  /// Private randomness (dealing, re-sharing of helper outputs); must
  /// NOT consume the pairwise streams or they desynchronize.
  Rng rng_local;
  std::uint64_t step = 0;

  Context(net::Endpoint ep, int p, std::uint64_t seed, bool is_malicious)
      : endpoint(ep),
        party(p),
        malicious(is_malicious),
        rng_next(seed ^ (0xa100 + static_cast<std::uint64_t>(p))),
        rng_prev(seed ^ (0xa100 + static_cast<std::uint64_t>((p + 2) % 3))),
        rng_local(seed ^ (0xb700 + static_cast<std::uint64_t>(p))) {}

  int next() const { return (party + 1) % 3; }
  int prev() const { return (party + 2) % 3; }
  std::uint64_t next_step() { return step++; }
};

struct Backend {
  using Share = falcon::Share;
  using Context = falcon::Context;

  static Share matmul(Context& ctx, const Share& x, const Share& w);
  static RingTensor relu_mask(Context& ctx, const Share& x);
  static void mul_public(Share& share, const RingTensor& mask);
  static Share softmax(Context& ctx, const Share& logits);
  static Share sub(const Share& lhs, const Share& rhs);
  static void add_assign(Share& lhs, const Share& rhs);
  static void sub_assign(Share& lhs, const Share& rhs);
  template <typename Fn>
  static Share transform(const Share& share, const Fn& fn) {
    return Share{fn(share.first), fn(share.second)};
  }
  static void add_row_broadcast(Share& matrix, const Share& bias);
  static void add_col_broadcast(Share& matrix, const Share& bias);
  static Share scale_truncate(Context& ctx, const Share& share,
                              double factor);
  /// RSS truncation costs one opening of the product size, so weight
  /// gradients stay at the 2f scale and a single rescale-by-2f in
  /// rescale_grad replaces two weight-sized openings per step.
  static Share matmul_grad(Context& ctx, const Share& x, const Share& w);
  static Share rescale_grad(Context& ctx, const Share& grad, double factor);
  static Share zeros_like(const Share& share) {
    return Share{RingTensor(share.first.shape()),
                 RingTensor(share.second.shape())};
  }
  static const Shape& shape(const Share& share) {
    return share.first.shape();
  }

  /// Open a shared value to every party (consistent opening in
  /// malicious mode).
  static RingTensor open(Context& ctx, const Share& share);
};

class FalconFramework final : public Framework {
 public:
  FalconFramework(nn::ModelSpec spec, bool malicious,
                  std::uint64_t seed = 7);

  std::string name() const override { return "Falcon"; }
  std::string adversary_model() const override {
    return malicious_ ? "Malicious" : "Honest-but-Curious";
  }

  StepCost train(const RealTensor& images, const RealTensor& onehot,
                 double learning_rate, int steps) override;
  StepCost infer(const RealTensor& images, int repeats,
                 std::vector<std::size_t>* predictions = nullptr) override;

  nn::Sequential& reference_model() { return model_; }

  /// Install a transport fault injector for the next sessions (used
  /// to demonstrate Falcon's detect-and-abort behaviour).
  void set_fault_injector(std::shared_ptr<net::FaultInjector> injector) {
    fault_injector_ = std::move(injector);
  }

 private:
  StepCost run_session(const RealTensor& images, const RealTensor* onehot,
                       double learning_rate, int steps,
                       std::vector<std::size_t>* predictions);

  nn::ModelSpec spec_;
  bool malicious_;
  std::uint64_t seed_;
  nn::Sequential model_;
  std::shared_ptr<net::FaultInjector> fault_injector_;
};

}  // namespace trustddl::baselines::falcon
