#include "baselines/falcon/falcon.hpp"

#include <array>
#include <thread>

#include "common/sha256.hpp"
#include "common/stopwatch.hpp"
#include "nn/layers.hpp"
#include "numeric/fixed_point.hpp"
#include "numeric/serde.hpp"

namespace trustddl::baselines::falcon {
namespace {

constexpr auto kTimeout = std::chrono::seconds(5);

RingTensor draw_ring(Rng& rng, const Shape& shape) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_u64();
  }
  return out;
}

/// Zero-sharing mask: alpha_i = PRF(i,i+1) - PRF(i-1,i), summing to
/// zero over the three parties.
RingTensor zero_mask(Context& ctx, const Shape& shape) {
  return draw_ring(ctx.rng_next, shape) - draw_ring(ctx.rng_prev, shape);
}

Bytes digest_bytes(const RingTensor& tensor) {
  const Bytes payload = tensor_to_bytes(tensor);
  const Sha256Digest digest = Sha256::hash(payload);
  return Bytes(digest.begin(), digest.end());
}

/// Fixed-point rescale for RSS shares.  Local truncation of three
/// full-range additive components is wrong with constant probability
/// (the wrap multiple k in c0+c1+c2 = v + k*2^64 is usually nonzero),
/// so Falcon uses preprocessed truncation.  Here the mask r derives
/// from the pairwise PRFs with bounded components (r_j uniform in
/// [0, 2^61)); parties open d = z - r (one message each, two in
/// malicious mode) and rescale publicly:
///   z/2^f  =  (d >> f)  +  sum_j (r_j >> f)      (error <= 3 ulp)
/// r's boundedness hides the ~2^48-bit value statistically —
/// the same trade-off as TrustDDL's masked-open truncation
/// (DESIGN.md §4).
Share rss_truncate(Context& ctx, const Share& z, int shift_bits) {
  Share r;
  r.first = RingTensor(z.first.shape());
  r.second = RingTensor(z.first.shape());
  for (std::size_t i = 0; i < r.first.size(); ++i) {
    r.first[i] = ctx.rng_prev.next_u64() >> 3;
    r.second[i] = ctx.rng_next.next_u64() >> 3;
  }
  const RingTensor d = Backend::open(ctx, Backend::sub(z, r));
  RingTensor d_shift(d.shape());
  for (std::size_t i = 0; i < d.size(); ++i) {
    d_shift[i] = fx::truncate(d[i], shift_bits);
  }
  Share out;
  out.first = RingTensor(z.first.shape());
  out.second = RingTensor(z.first.shape());
  for (std::size_t i = 0; i < out.first.size(); ++i) {
    out.first[i] = r.first[i] >> shift_bits;    // r_j >= 0: plain shift
    out.second[i] = r.second[i] >> shift_bits;
  }
  // The public term is absorbed into component c_0, held by party 0
  // (as first) and party 2 (as second).
  if (ctx.party == 0) {
    out.first += d_shift;
  } else if (ctx.party == 2) {
    out.second += d_shift;
  }
  return out;
}

/// Multiplication core: local partial products (`product` abstracts
/// matmul vs hadamard), zero-masked re-sharing (one message to the
/// previous party), and in malicious mode a verification tensor plus
/// digest cross-checks.
template <typename ProductFn>
Share multiply(Context& ctx, const Share& x, const Share& w,
               const Shape& out_shape, const ProductFn& product) {
  const std::uint64_t n = ctx.next_step();
  RingTensor local = product(x.first, w.first) +
                     product(x.first, w.second) +
                     product(x.second, w.first);
  local += zero_mask(ctx, out_shape);

  const std::string tag = "r" + std::to_string(n);
  ctx.endpoint.send(ctx.prev(), tag, tensor_to_bytes(local));
  if (ctx.malicious) {
    // Digest of the re-shared component so the receiver can check
    // transport integrity, plus an equal-size verification tensor
    // standing in for Falcon's triple-sacrifice traffic.
    ctx.endpoint.send(ctx.prev(), tag + "/h", digest_bytes(local));
    ctx.endpoint.send(ctx.next(), tag + "/v", tensor_to_bytes(local));
  }

  const Bytes received = ctx.endpoint.recv(ctx.next(), tag, kTimeout);
  if (ctx.malicious) {
    const Bytes expected_digest =
        ctx.endpoint.recv(ctx.next(), tag + "/h", kTimeout);
    const Sha256Digest actual = Sha256::hash(received);
    if (!std::equal(actual.begin(), actual.end(), expected_digest.begin(),
                    expected_digest.end())) {
      throw FalconAbort("re-sharing digest mismatch at step " +
                        std::to_string(n));
    }
    // Drain the verification tensor (content stands in for the
    // sacrifice check).
    (void)ctx.endpoint.recv(ctx.prev(), tag + "/v", kTimeout);
  }
  Share out;
  out.first = local;
  out.second = tensor_from_bytes(received);
  return rss_truncate(ctx, out, ctx.frac_bits);
}

}  // namespace

Share Backend::matmul(Context& ctx, const Share& x, const Share& w) {
  TRUSTDDL_REQUIRE(x.first.rank() == 2 && w.first.rank() == 2 &&
                       x.first.cols() == w.first.rows(),
                   "falcon matmul: shape mismatch");
  const Shape out_shape{x.first.rows(), w.first.cols()};
  return multiply(ctx, x, w, out_shape,
                  [](const RingTensor& lhs, const RingTensor& rhs) {
                    return trustddl::matmul(lhs, rhs);
                  });
}

RingTensor Backend::open(Context& ctx, const Share& share) {
  const std::uint64_t n = ctx.next_step();
  const std::string tag = "o" + std::to_string(n);
  // Party i is missing component c_{i+2}, held by parties i+1 (as its
  // second) and i+2 (as its first).  Semi-honest: one copy; malicious:
  // both copies, compared (Falcon's consistent opening).
  ctx.endpoint.send(ctx.prev(), tag, tensor_to_bytes(share.second));
  if (ctx.malicious) {
    ctx.endpoint.send(ctx.next(), tag + "/2", tensor_to_bytes(share.first));
  }
  const RingTensor missing =
      tensor_from_bytes(ctx.endpoint.recv(ctx.next(), tag, kTimeout));
  if (ctx.malicious) {
    const RingTensor copy = tensor_from_bytes(
        ctx.endpoint.recv(ctx.prev(), tag + "/2", kTimeout));
    if (copy != missing) {
      throw FalconAbort("inconsistent opening at step " + std::to_string(n));
    }
  }
  return share.first + share.second + missing;
}

RingTensor Backend::relu_mask(Context& ctx, const Share& x) {
  // Positive multiplicative mask shared in RSS form via the pairwise
  // PRFs: component c_j is derived by both of its holders.
  Share t;
  t.first = RingTensor(x.first.shape());
  t.second = RingTensor(x.first.shape());
  for (std::size_t i = 0; i < t.first.size(); ++i) {
    t.first[i] = fx::encode(ctx.rng_prev.next_double(0.2, 1.0),
                            ctx.frac_bits);
    t.second[i] = fx::encode(ctx.rng_next.next_double(0.2, 1.0),
                             ctx.frac_bits);
  }
  const std::uint64_t n = ctx.next_step();
  (void)n;
  // u = t (.) x via one RSS multiplication WITHOUT truncation (the
  // sign of the 2f-scaled product equals the sign of x since t > 0).
  RingTensor local = hadamard(t.first, x.first) +
                     hadamard(t.first, x.second) +
                     hadamard(t.second, x.first);
  local += zero_mask(ctx, x.first.shape());
  const std::string tag = "u" + std::to_string(ctx.next_step());
  ctx.endpoint.send(ctx.prev(), tag, tensor_to_bytes(local));
  const RingTensor received =
      tensor_from_bytes(ctx.endpoint.recv(ctx.next(), tag, kTimeout));
  Share u{local, received};
  const RingTensor opened = open(ctx, u);
  RingTensor mask(opened.shape());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = (fx::sign(opened[i]) > 0) ? 1u : 0u;
  }
  return mask;
}

void Backend::mul_public(Share& share, const RingTensor& mask) {
  share.first.hadamard_inplace(mask);
  share.second.hadamard_inplace(mask);
}

Share Backend::softmax(Context& ctx, const Share& logits) {
  const std::uint64_t n = ctx.next_step();
  const std::string up_tag = "s" + std::to_string(n);
  const std::string down_tag = "d" + std::to_string(n);
  // Designated party 0 reconstructs the (few) logits, computes softmax
  // and re-shares (cost-model simplification, DESIGN.md §5).
  if (ctx.party == 0) {
    const RingTensor c1 =
        tensor_from_bytes(ctx.endpoint.recv(1, up_tag, kTimeout));
    const RingTensor c2 =
        tensor_from_bytes(ctx.endpoint.recv(2, up_tag, kTimeout));
    const RingTensor value = logits.first + c1 + c2;
    const RealTensor probabilities =
        nn::softmax_rows(to_real(value, ctx.frac_bits));
    const RingTensor p = to_ring(probabilities, ctx.frac_bits);
    // Component c1' derives from the PRF with party 1; c2' and c0' are
    // sent explicitly.
    const RingTensor p1 = draw_ring(ctx.rng_next, p.shape());
    const RingTensor p2 = draw_ring(ctx.rng_local, p.shape());
    const RingTensor p0 = p - p1 - p2;
    ctx.endpoint.send(1, down_tag, tensor_to_bytes(p2));
    ctx.endpoint.send(2, down_tag + "/2", tensor_to_bytes(p2));
    ctx.endpoint.send(2, down_tag + "/0", tensor_to_bytes(p0));
    return Share{p0, p1};
  }
  ctx.endpoint.send(0, up_tag, tensor_to_bytes(logits.first));
  if (ctx.party == 1) {
    const RingTensor p1 = draw_ring(ctx.rng_prev, logits.first.shape());
    const RingTensor p2 =
        tensor_from_bytes(ctx.endpoint.recv(0, down_tag, kTimeout));
    return Share{p1, p2};
  }
  const RingTensor p2 =
      tensor_from_bytes(ctx.endpoint.recv(0, down_tag + "/2", kTimeout));
  const RingTensor p0 =
      tensor_from_bytes(ctx.endpoint.recv(0, down_tag + "/0", kTimeout));
  return Share{p2, p0};
}

Share Backend::sub(const Share& lhs, const Share& rhs) {
  return Share{lhs.first - rhs.first, lhs.second - rhs.second};
}

void Backend::add_assign(Share& lhs, const Share& rhs) {
  lhs.first += rhs.first;
  lhs.second += rhs.second;
}

void Backend::sub_assign(Share& lhs, const Share& rhs) {
  lhs.first -= rhs.first;
  lhs.second -= rhs.second;
}

void Backend::add_row_broadcast(Share& matrix, const Share& bias) {
  const auto add = [](RingTensor& component, const RingTensor& row) {
    for (std::size_t r = 0; r < component.rows(); ++r) {
      for (std::size_t c = 0; c < component.cols(); ++c) {
        component.at(r, c) += row.at(0, c);
      }
    }
  };
  add(matrix.first, bias.first);
  add(matrix.second, bias.second);
}

void Backend::add_col_broadcast(Share& matrix, const Share& bias) {
  const auto add = [](RingTensor& component, const RingTensor& column) {
    for (std::size_t r = 0; r < component.rows(); ++r) {
      for (std::size_t c = 0; c < component.cols(); ++c) {
        component.at(r, c) += column[r];
      }
    }
  };
  add(matrix.first, bias.first);
  add(matrix.second, bias.second);
}

Share Backend::scale_truncate(Context& ctx, const Share& share,
                              double factor) {
  const std::uint64_t encoded = fx::encode(factor, ctx.frac_bits);
  Share out = share;
  out.first.scale_inplace(encoded);
  out.second.scale_inplace(encoded);
  return rss_truncate(ctx, out, ctx.frac_bits);
}

Share Backend::matmul_grad(Context& ctx, const Share& x, const Share& w) {
  TRUSTDDL_REQUIRE(x.first.rank() == 2 && w.first.rank() == 2 &&
                       x.first.cols() == w.first.rows(),
                   "falcon matmul_grad: shape mismatch");
  // Like matmul but WITHOUT the rescale: the 2f scale is carried in
  // the gradient accumulator and removed once in rescale_grad.
  const std::uint64_t n = ctx.next_step();
  const Shape out_shape{x.first.rows(), w.first.cols()};
  RingTensor local = trustddl::matmul(x.first, w.first) +
                     trustddl::matmul(x.first, w.second) +
                     trustddl::matmul(x.second, w.first);
  local += zero_mask(ctx, out_shape);
  const std::string tag = "g" + std::to_string(n);
  ctx.endpoint.send(ctx.prev(), tag, tensor_to_bytes(local));
  if (ctx.malicious) {
    ctx.endpoint.send(ctx.prev(), tag + "/h", digest_bytes(local));
    ctx.endpoint.send(ctx.next(), tag + "/v", tensor_to_bytes(local));
  }
  const Bytes received = ctx.endpoint.recv(ctx.next(), tag, kTimeout);
  if (ctx.malicious) {
    const Bytes expected_digest =
        ctx.endpoint.recv(ctx.next(), tag + "/h", kTimeout);
    const Sha256Digest actual = Sha256::hash(received);
    if (!std::equal(actual.begin(), actual.end(), expected_digest.begin(),
                    expected_digest.end())) {
      throw FalconAbort("gradient re-sharing digest mismatch at step " +
                        std::to_string(n));
    }
    (void)ctx.endpoint.recv(ctx.prev(), tag + "/v", kTimeout);
  }
  Share out;
  out.first = local;
  out.second = tensor_from_bytes(received);
  return out;
}

Share Backend::rescale_grad(Context& ctx, const Share& grad, double factor) {
  // grad carries 2f fractional bits; lr-scaling adds f more, and one
  // opening rescales by 2f so the weight delta lands back at f.
  const std::uint64_t encoded = fx::encode(factor, ctx.frac_bits);
  Share out = grad;
  out.first.scale_inplace(encoded);
  out.second.scale_inplace(encoded);
  return rss_truncate(ctx, out, 2 * ctx.frac_bits);
}

namespace {

/// Party-0-side dealing: component c1 derives from the PRF with party
/// 1; c0 goes to party 2, c2 to parties 1 and 2.
Share deal(Context& ctx, const RingTensor& secret, const std::string& tag) {
  TRUSTDDL_ASSERT(ctx.party == 0);
  const RingTensor c1 = draw_ring(ctx.rng_next, secret.shape());
  const RingTensor c2 = draw_ring(ctx.rng_local, secret.shape());
  const RingTensor c0 = secret - c1 - c2;
  ctx.endpoint.send(1, tag + "/2", tensor_to_bytes(c2));
  ctx.endpoint.send(2, tag + "/2", tensor_to_bytes(c2));
  ctx.endpoint.send(2, tag + "/0", tensor_to_bytes(c0));
  return Share{c0, c1};
}

Share receive_dealt(Context& ctx, const Shape& shape,
                    const std::string& tag) {
  TRUSTDDL_ASSERT(ctx.party != 0);
  if (ctx.party == 1) {
    const RingTensor c1 = draw_ring(ctx.rng_prev, shape);
    const RingTensor c2 = tensor_from_bytes(
        ctx.endpoint.recv(0, tag + "/2", kTimeout));
    return Share{c1, c2};
  }
  const RingTensor c2 =
      tensor_from_bytes(ctx.endpoint.recv(0, tag + "/2", kTimeout));
  const RingTensor c0 =
      tensor_from_bytes(ctx.endpoint.recv(0, tag + "/0", kTimeout));
  return Share{c2, c0};
}

}  // namespace

FalconFramework::FalconFramework(nn::ModelSpec spec, bool malicious,
                                 std::uint64_t seed)
    : spec_(std::move(spec)),
      malicious_(malicious),
      seed_(seed),
      model_([&] {
        Rng rng(seed);
        return nn::build_model(spec_, rng);
      }()) {}

StepCost FalconFramework::run_session(const RealTensor& images,
                                      const RealTensor* onehot,
                                      double learning_rate, int steps,
                                      std::vector<std::size_t>* predictions) {
  const int frac_bits = fx::kDefaultFracBits;
  net::NetworkConfig net_config;
  net_config.num_parties = 3;
  net_config.recv_timeout = kTimeout;
  net::Network network(net_config);
  if (fault_injector_) {
    network.set_fault_injector(fault_injector_);
  }

  const auto parameters = model_.parameters();
  Stopwatch watch;
  std::array<std::exception_ptr, 3> failures;
  std::vector<RingTensor> revealed;
  std::vector<RingTensor> trained;
  std::vector<std::thread> threads;
  for (int party = 0; party < 3; ++party) {
    threads.emplace_back([&, party] {
      try {
        Context ctx(network.endpoint(party), party, seed_, malicious_);
        ctx.frac_bits = frac_bits;
        std::vector<Share> params;
        for (std::size_t i = 0; i < parameters.size(); ++i) {
          const RingTensor secret =
              to_ring(parameters[i]->value, frac_bits);
          const std::string tag = "w" + std::to_string(i);
          params.push_back(party == 0
                               ? deal(ctx, secret, tag)
                               : receive_dealt(ctx, secret.shape(), tag));
        }
        const RingTensor x_ring = to_ring(images, frac_bits);
        const Share x = party == 0 ? deal(ctx, x_ring, "x")
                                   : receive_dealt(ctx, x_ring.shape(), "x");
        Share y;
        if (onehot != nullptr) {
          const RingTensor y_ring = to_ring(*onehot, frac_bits);
          y = party == 0 ? deal(ctx, y_ring, "y")
                         : receive_dealt(ctx, y_ring.shape(), "y");
        }

        GenericNet<Backend> net(spec_, std::move(params));
        const double batch = static_cast<double>(images.rows());
        for (int step = 0; step < steps; ++step) {
          const Share probabilities = net.forward(ctx, x);
          if (onehot != nullptr) {
            net.backward(ctx, Backend::sub(probabilities, y));
            net.sgd(ctx, learning_rate / batch, frac_bits);
          } else {
            const RingTensor opened = Backend::open(ctx, probabilities);
            if (party == 0) {
              revealed.push_back(opened);
            }
          }
        }
        if (onehot != nullptr) {
          for (const Share& parameter : net.parameter_shares()) {
            const RingTensor opened = Backend::open(ctx, parameter);
            if (party == 0) {
              trained.push_back(opened);
            }
          }
        }
      } catch (...) {
        failures[static_cast<std::size_t>(party)] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // An abort is the meaningful outcome; peers blocked on the aborted
  // step time out as a side effect.
  for (const auto& failure : failures) {
    if (failure) {
      try {
        std::rethrow_exception(failure);
      } catch (const FalconAbort&) {
        throw;
      } catch (...) {
      }
    }
  }
  for (const auto& failure : failures) {
    if (failure) {
      std::rethrow_exception(failure);
    }
  }

  if (onehot != nullptr && trained.size() == parameters.size()) {
    for (std::size_t i = 0; i < parameters.size(); ++i) {
      parameters[i]->value = to_real(trained[i], frac_bits);
    }
  }

  if (predictions != nullptr && !revealed.empty()) {
    const RealTensor probabilities = to_real(revealed.back(), frac_bits);
    predictions->clear();
    for (std::size_t row = 0; row < probabilities.rows(); ++row) {
      std::size_t best = 0;
      for (std::size_t col = 1; col < probabilities.cols(); ++col) {
        if (probabilities.at(row, col) > probabilities.at(row, best)) {
          best = col;
        }
      }
      predictions->push_back(best);
    }
  }

  const auto traffic = network.traffic();
  return StepCost{watch.elapsed_seconds(), traffic.total_bytes,
                  traffic.total_messages};
}

StepCost FalconFramework::train(const RealTensor& images,
                                const RealTensor& onehot,
                                double learning_rate, int steps) {
  return run_session(images, &onehot, learning_rate, steps, nullptr);
}

StepCost FalconFramework::infer(const RealTensor& images, int repeats,
                                std::vector<std::size_t>* predictions) {
  return run_session(images, nullptr, 0.0, repeats, predictions);
}

}  // namespace trustddl::baselines::falcon
