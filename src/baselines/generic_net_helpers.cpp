// generic_net.hpp is header-only; this TU anchors the library target.
#include "baselines/generic_net.hpp"
