// Common interface for the Table II comparator frameworks.
//
// Each framework is an executable protocol model (DESIGN.md §4): it
// runs the same CNN workload over the same metered in-process network
// with the message pattern and sizes of the original protocol, so the
// *relative* costs Table II reports are measured, not estimated.
//
// Costs include one-time setup (weight sharing); the bench harness
// isolates per-step cost by differencing runs with different step
// counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "numeric/tensor.hpp"

namespace trustddl::baselines {

struct StepCost {
  double wall_seconds = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;

  double megabytes() const {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  }

  StepCost operator-(const StepCost& other) const {
    return StepCost{wall_seconds - other.wall_seconds, bytes - other.bytes,
                    messages - other.messages};
  }
  StepCost scaled(double factor) const {
    return StepCost{wall_seconds * factor,
                    static_cast<std::uint64_t>(
                        static_cast<double>(bytes) * factor),
                    static_cast<std::uint64_t>(
                        static_cast<double>(messages) * factor)};
  }
};

class Framework {
 public:
  virtual ~Framework() = default;

  virtual std::string name() const = 0;
  /// Adversary model, as in Table II's "Model" column.
  virtual std::string adversary_model() const = 0;

  /// Run `steps` SGD steps on the given batch in one session; returns
  /// the session cost (setup + steps).
  virtual StepCost train(const RealTensor& images, const RealTensor& onehot,
                         double learning_rate, int steps) = 0;

  /// Run inference `repeats` times on the given batch in one session;
  /// `predictions` (optional) receives the last run's labels.
  virtual StepCost infer(const RealTensor& images, int repeats,
                         std::vector<std::size_t>* predictions = nullptr) = 0;
};

}  // namespace trustddl::baselines
