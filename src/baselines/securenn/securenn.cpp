#include "baselines/securenn/securenn.hpp"

#include <array>
#include <thread>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "net/runtime.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "numeric/fixed_point.hpp"
#include "numeric/serde.hpp"

namespace trustddl::baselines::securenn {
namespace {

constexpr int kAssistant = 2;
constexpr auto kTimeout = std::chrono::seconds(30);

enum class Op : std::uint8_t {
  kMatMul = 0,
  kRelu = 1,
  kSoftmax = 2,
  kReveal = 3,
  kStop = 4,
};

RingTensor draw_ring(Rng& rng, const Shape& shape) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_u64();
  }
  return out;
}

RingTensor draw_positive(Rng& rng, const Shape& shape, int frac_bits) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = fx::encode(rng.next_double(0.5, 2.0), frac_bits);
  }
  return out;
}

std::string req_tag(std::uint64_t n) { return "a" + std::to_string(n); }

}  // namespace

Share Backend::matmul(Context& ctx, const Share& x, const Share& w) {
  const std::uint64_t n = ctx.next_step();
  const std::size_t m = x.value.rows();
  const std::size_t k = x.value.cols();
  const std::size_t cols = w.value.cols();
  TRUSTDDL_REQUIRE(w.value.rows() == k, "securenn matmul: shape mismatch");

  // PRF-derived triple shares (a_i, b_i shared with the assistant).
  const RingTensor a = draw_ring(ctx.common_assistant, Shape{m, k});
  const RingTensor b = draw_ring(ctx.common_assistant, Shape{k, cols});

  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(Op::kMatMul));
  request.write_u64(m);
  request.write_u64(k);
  request.write_u64(cols);
  ctx.endpoint.send(kAssistant, req_tag(n), request.take());

  // Beaver mask exchange with the peer.
  const RingTensor e_share = x.value - a;
  const RingTensor f_share = w.value - b;
  ByteWriter to_peer;
  write_tensor(to_peer, e_share);
  write_tensor(to_peer, f_share);
  const std::string exchange_tag = "e" + std::to_string(n);
  ctx.endpoint.send(ctx.peer(), exchange_tag, to_peer.take());
  ByteReader from_peer(ctx.endpoint.recv(ctx.peer(), exchange_tag, kTimeout));
  const RingTensor e = e_share + read_tensor(from_peer);
  const RingTensor f = f_share + read_tensor(from_peer);

  // c share: P0 derives it from the PRF, P1 receives the correction.
  RingTensor c(Shape{m, cols});
  if (ctx.party == 0) {
    c = draw_ring(ctx.common_assistant, Shape{m, cols});
  } else {
    ByteReader reader(
        ctx.endpoint.recv(kAssistant, "c" + std::to_string(n), kTimeout));
    c = read_tensor(reader);
  }

  RingTensor z = c + trustddl::matmul(e, b) + trustddl::matmul(a, f);
  if (ctx.party == 1) {
    z += trustddl::matmul(e, f);
  }
  return Share{truncate(z, ctx.frac_bits)};
}

RingTensor Backend::relu_mask(Context& ctx, const Share& x) {
  const std::uint64_t n = ctx.next_step();
  // Multiplicative positive mask known to both computing parties but
  // not to the assistant: scaling shares locally preserves the sum's
  // sign while hiding magnitudes from P2.
  const RingTensor s =
      draw_positive(ctx.common_peer, x.value.shape(), ctx.frac_bits);
  RingTensor u = x.value;
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] *= s[i];
  }
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(Op::kRelu));
  write_tensor(request, u);
  ctx.endpoint.send(kAssistant, req_tag(n), request.take());
  ByteReader reader(
      ctx.endpoint.recv(kAssistant, "m" + std::to_string(n), kTimeout));
  return read_tensor(reader);
}

void Backend::mul_public(Share& share, const RingTensor& mask) {
  share.value.hadamard_inplace(mask);
}

Share Backend::softmax(Context& ctx, const Share& logits) {
  const std::uint64_t n = ctx.next_step();
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(Op::kSoftmax));
  write_tensor(request, logits.value);
  ctx.endpoint.send(kAssistant, req_tag(n), request.take());
  if (ctx.party == 0) {
    return Share{draw_ring(ctx.common_assistant, logits.value.shape())};
  }
  ByteReader reader(
      ctx.endpoint.recv(kAssistant, "p" + std::to_string(n), kTimeout));
  return Share{read_tensor(reader)};
}

Share Backend::sub(const Share& lhs, const Share& rhs) {
  return Share{lhs.value - rhs.value};
}

void Backend::add_assign(Share& lhs, const Share& rhs) {
  lhs.value += rhs.value;
}

void Backend::sub_assign(Share& lhs, const Share& rhs) {
  lhs.value -= rhs.value;
}

void Backend::add_row_broadcast(Share& matrix, const Share& bias) {
  for (std::size_t r = 0; r < matrix.value.rows(); ++r) {
    for (std::size_t c = 0; c < matrix.value.cols(); ++c) {
      matrix.value.at(r, c) += bias.value.at(0, c);
    }
  }
}

void Backend::add_col_broadcast(Share& matrix, const Share& bias) {
  for (std::size_t r = 0; r < matrix.value.rows(); ++r) {
    for (std::size_t c = 0; c < matrix.value.cols(); ++c) {
      matrix.value.at(r, c) += bias.value[r];
    }
  }
}

Share Backend::scale_truncate(Context& ctx, const Share& share,
                              double factor) {
  const std::uint64_t encoded = fx::encode(factor, ctx.frac_bits);
  RingTensor scaled = share.value;
  scaled.scale_inplace(encoded);
  return Share{truncate(scaled, ctx.frac_bits)};
}

void Backend::reveal(Context& ctx, const Share& share) {
  const std::uint64_t n = ctx.next_step();
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(Op::kReveal));
  write_tensor(request, share.value);
  ctx.endpoint.send(kAssistant, req_tag(n), request.take());
}

namespace {

/// The P2 assistant: serves triple generation, ReLU signs and softmax
/// in strict request order (the computing parties are SPMD, so their
/// request sequences are identical).
class Assistant {
 public:
  Assistant(net::Endpoint endpoint, std::uint64_t session_seed,
            int frac_bits)
      : endpoint_(endpoint),
        rng_with_p0_(session_seed ^ 0x02020202ull),
        rng_with_p1_(session_seed ^ 0x03030303ull),
        frac_bits_(frac_bits) {}

  /// PRF-optimized dealing: P0 derives its share from the common PRF;
  /// only P1's correction crosses the wire.
  void deal_secret(const RingTensor& secret, const std::string& tag) {
    const RingTensor share0 = draw_ring(rng_with_p0_, secret.shape());
    ByteWriter writer;
    write_tensor(writer, secret - share0);
    endpoint_.send(1, tag, writer.take());
  }

  void run() {
    for (std::uint64_t n = 0;; ++n) {
      ByteReader req0(endpoint_.recv(0, req_tag(n), kTimeout));
      ByteReader req1(endpoint_.recv(1, req_tag(n), kTimeout));
      const auto op0 = static_cast<Op>(req0.read_u8());
      const auto op1 = static_cast<Op>(req1.read_u8());
      TRUSTDDL_ASSERT_MSG(op0 == op1, "assistant: desynchronized parties");
      switch (op0) {
        case Op::kMatMul: {
          const std::size_t m = req0.read_u64();
          const std::size_t k = req0.read_u64();
          const std::size_t cols = req0.read_u64();
          const RingTensor a0 = draw_ring(rng_with_p0_, Shape{m, k});
          const RingTensor b0 = draw_ring(rng_with_p0_, Shape{k, cols});
          const RingTensor c0 = draw_ring(rng_with_p0_, Shape{m, cols});
          const RingTensor a1 = draw_ring(rng_with_p1_, Shape{m, k});
          const RingTensor b1 = draw_ring(rng_with_p1_, Shape{k, cols});
          const RingTensor c = trustddl::matmul(a0 + a1, b0 + b1);
          ByteWriter writer;
          write_tensor(writer, c - c0);
          endpoint_.send(1, "c" + std::to_string(n), writer.take());
          break;
        }
        case Op::kRelu: {
          const RingTensor u0 = read_tensor(req0);
          const RingTensor u1 = read_tensor(req1);
          const RingTensor u = u0 + u1;
          RingTensor mask(u.shape());
          for (std::size_t i = 0; i < mask.size(); ++i) {
            mask[i] = (fx::sign(u[i]) > 0) ? 1u : 0u;
          }
          ByteWriter writer;
          write_tensor(writer, mask);
          const Bytes payload = writer.take();
          endpoint_.send(0, "m" + std::to_string(n), payload);
          endpoint_.send(1, "m" + std::to_string(n), payload);
          break;
        }
        case Op::kSoftmax: {
          const RingTensor l0 = read_tensor(req0);
          const RingTensor l1 = read_tensor(req1);
          const RealTensor probabilities =
              nn::softmax_rows(to_real(l0 + l1, frac_bits_));
          const RingTensor p = to_ring(probabilities, frac_bits_);
          const RingTensor p0 = draw_ring(rng_with_p0_, p.shape());
          ByteWriter writer;
          write_tensor(writer, p - p0);
          endpoint_.send(1, "p" + std::to_string(n), writer.take());
          break;
        }
        case Op::kReveal: {
          const RingTensor s0 = read_tensor(req0);
          const RingTensor s1 = read_tensor(req1);
          revealed_.push_back(s0 + s1);
          break;
        }
        case Op::kStop:
          return;
      }
    }
  }

  const std::vector<RingTensor>& revealed() const { return revealed_; }

 private:
  net::Endpoint endpoint_;
  Rng rng_with_p0_;
  Rng rng_with_p1_;
  int frac_bits_;
  std::vector<RingTensor> revealed_;
};

void send_stop(Context& ctx) {
  const std::uint64_t n = ctx.next_step();
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(Op::kStop));
  ctx.endpoint.send(kAssistant, req_tag(n), request.take());
}

/// Computing-party side of PRF-optimized dealing.
Share receive_secret(Context& ctx, const Shape& shape,
                     const std::string& tag) {
  if (ctx.party == 0) {
    return Share{draw_ring(ctx.common_assistant, shape)};
  }
  ByteReader reader(ctx.endpoint.recv(kAssistant, tag, kTimeout));
  return Share{read_tensor(reader)};
}

}  // namespace

SecureNnFramework::SecureNnFramework(nn::ModelSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed), model_([&] {
        Rng rng(seed);
        return nn::build_model(spec_, rng);
      }()) {}

StepCost SecureNnFramework::run_session(
    const RealTensor& images, const RealTensor* onehot, double learning_rate,
    int steps, std::vector<std::size_t>* predictions) {
  const int frac_bits = fx::kDefaultFracBits;
  net::NetworkConfig net_config;
  net_config.num_parties = 3;
  net_config.recv_timeout = kTimeout;
  net::Network network(net_config);

  const auto parameters = model_.parameters();
  Assistant assistant(network.endpoint(kAssistant), seed_, frac_bits);
  Stopwatch watch;

  std::array<std::exception_ptr, 3> failures;
  std::vector<std::thread> threads;
  // Assistant: deal all secrets, then serve.
  threads.emplace_back([&] {
    try {
      for (std::size_t i = 0; i < parameters.size(); ++i) {
        assistant.deal_secret(to_ring(parameters[i]->value, frac_bits),
                              "w" + std::to_string(i));
      }
      assistant.deal_secret(to_ring(images, frac_bits), "x");
      if (onehot != nullptr) {
        assistant.deal_secret(to_ring(*onehot, frac_bits), "y");
      }
      assistant.run();
    } catch (...) {
      failures[2] = std::current_exception();
    }
  });

  for (int party = 0; party < 2; ++party) {
    threads.emplace_back([&, party] {
      try {
        Context ctx(network.endpoint(party), party, seed_);
        ctx.frac_bits = frac_bits;
        std::vector<Share> params;
        for (std::size_t i = 0; i < parameters.size(); ++i) {
          params.push_back(receive_secret(ctx, parameters[i]->value.shape(),
                                          "w" + std::to_string(i)));
        }
        const Share x = receive_secret(ctx, images.shape(), "x");
        Share y;
        if (onehot != nullptr) {
          y = receive_secret(ctx, onehot->shape(), "y");
        }
        GenericNet<Backend> net(spec_, std::move(params));
        const double batch = static_cast<double>(images.rows());
        for (int step = 0; step < steps; ++step) {
          const Share probabilities = net.forward(ctx, x);
          if (onehot != nullptr) {
            net.backward(ctx, Backend::sub(probabilities, y));
            net.sgd(ctx, learning_rate / batch, frac_bits);
          } else {
            Backend::reveal(ctx, probabilities);
          }
        }
        if (onehot != nullptr) {
          // Reveal the trained weights so the framework object's
          // reference model reflects the secure training.
          for (const Share& parameter : net.parameter_shares()) {
            Backend::reveal(ctx, parameter);
          }
        }
        send_stop(ctx);
      } catch (...) {
        failures[static_cast<std::size_t>(party)] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const auto& failure : failures) {
    if (failure) {
      std::rethrow_exception(failure);
    }
  }

  if (onehot != nullptr &&
      assistant.revealed().size() == parameters.size()) {
    for (std::size_t i = 0; i < parameters.size(); ++i) {
      parameters[i]->value = to_real(assistant.revealed()[i], frac_bits);
    }
  }

  if (predictions != nullptr && !assistant.revealed().empty()) {
    const RealTensor probabilities =
        to_real(assistant.revealed().back(), frac_bits);
    predictions->clear();
    for (std::size_t row = 0; row < probabilities.rows(); ++row) {
      std::size_t best = 0;
      for (std::size_t col = 1; col < probabilities.cols(); ++col) {
        if (probabilities.at(row, col) > probabilities.at(row, best)) {
          best = col;
        }
      }
      predictions->push_back(best);
    }
  }

  const auto traffic = network.traffic();
  return StepCost{watch.elapsed_seconds(), traffic.total_bytes,
                  traffic.total_messages};
}

StepCost SecureNnFramework::train(const RealTensor& images,
                                  const RealTensor& onehot,
                                  double learning_rate, int steps) {
  return run_session(images, &onehot, learning_rate, steps, nullptr);
}

StepCost SecureNnFramework::infer(const RealTensor& images, int repeats,
                                  std::vector<std::size_t>* predictions) {
  return run_session(images, nullptr, 0.0, repeats, predictions);
}

}  // namespace trustddl::baselines::securenn
