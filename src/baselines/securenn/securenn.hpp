// SecureNN-style baseline (Wagh, Gupta, Chandran — PETS'19).
//
// Executable protocol model of SecureNN's 3-party architecture: P0 and
// P1 hold 2-of-2 additive shares and do the computation; P2 is the
// assistant that generates multiplication triples from pairwise PRF
// keys (so triple "dealing" costs a single c-share message per
// multiplication) and helps with non-linearities.  The message pattern
// per operation:
//   matmul  : c-share from P2 to P1 (a, b and P0's c-share derive from
//             PRFs), plus the Beaver e/f exchange between P0 and P1
//   ReLU    : multiplicatively-masked shares to P2, sign mask back
//             (cost-faithful simplification of SecureNN's MSB/private-
//             compare pipeline; see DESIGN.md §5)
//   softmax : helper computation at P2, PRF-optimized resharing
// Fixed-point rescale is share-local truncation, as in SecureNN.
// P2 also plays the model/data-holder role (shares weights and inputs
// with the PRF optimization) and receives inference outputs.
//
// Security model: honest-but-curious, matching the SecureNN row of
// Table II.
#pragma once

#include <memory>

#include "baselines/framework.hpp"
#include "baselines/generic_net.hpp"
#include "common/rng.hpp"
#include "numeric/fixed_point.hpp"
#include "net/network.hpp"

namespace trustddl::baselines::securenn {

/// One computing party's 2-of-2 additive share.
struct Share {
  RingTensor value;
};

/// Computing-party protocol state (parties 0 and 1).
struct Context {
  net::Endpoint endpoint;
  int party = 0;  ///< 0 or 1
  int frac_bits = fx::kDefaultFracBits;
  Rng common_peer;       ///< PRF stream shared with the other party
  Rng common_assistant;  ///< PRF stream shared with P2
  std::uint64_t step = 0;

  Context(net::Endpoint ep, int p, std::uint64_t session_seed)
      : endpoint(ep),
        party(p),
        common_peer(session_seed ^ 0x01010101),
        common_assistant(session_seed ^
                         (p == 0 ? 0x02020202ull : 0x03030303ull)) {}

  int peer() const { return 1 - party; }
  std::uint64_t next_step() { return step++; }
};

/// Backend for GenericNet (see generic_net.hpp for the concept).
struct Backend {
  using Share = securenn::Share;
  using Context = securenn::Context;

  static Share matmul(Context& ctx, const Share& x, const Share& w);
  static RingTensor relu_mask(Context& ctx, const Share& x);
  static void mul_public(Share& share, const RingTensor& mask);
  static Share softmax(Context& ctx, const Share& logits);
  static Share sub(const Share& lhs, const Share& rhs);
  static void add_assign(Share& lhs, const Share& rhs);
  static void sub_assign(Share& lhs, const Share& rhs);
  template <typename Fn>
  static Share transform(const Share& share, const Fn& fn) {
    return Share{fn(share.value)};
  }
  static void add_row_broadcast(Share& matrix, const Share& bias);
  static void add_col_broadcast(Share& matrix, const Share& bias);
  static Share scale_truncate(Context& ctx, const Share& share,
                              double factor);
  /// Local truncation is communication-free for 2-of-2 shares, so
  /// weight gradients are rescaled eagerly.
  static Share matmul_grad(Context& ctx, const Share& x, const Share& w) {
    return matmul(ctx, x, w);
  }
  static Share rescale_grad(Context& ctx, const Share& grad, double factor) {
    return scale_truncate(ctx, grad, factor);
  }
  static Share zeros_like(const Share& share) {
    return Share{RingTensor(share.value.shape())};
  }
  static const Shape& shape(const Share& share) {
    return share.value.shape();
  }

  /// Send the share to P2 for reconstruction (inference output).
  static void reveal(Context& ctx, const Share& share);
};

/// Framework driver: spawns P0/P1 program threads and the P2
/// assistant, runs the workload, meters the network.
class SecureNnFramework final : public Framework {
 public:
  SecureNnFramework(nn::ModelSpec spec, std::uint64_t seed = 7);

  std::string name() const override { return "SecureNN"; }
  std::string adversary_model() const override {
    return "Honest-but-Curious";
  }

  StepCost train(const RealTensor& images, const RealTensor& onehot,
                 double learning_rate, int steps) override;
  StepCost infer(const RealTensor& images, int repeats,
                 std::vector<std::size_t>* predictions = nullptr) override;

  nn::Sequential& reference_model() { return model_; }

 private:
  StepCost run_session(const RealTensor& images, const RealTensor* onehot,
                       double learning_rate, int steps,
                       std::vector<std::size_t>* predictions);

  nn::ModelSpec spec_;
  std::uint64_t seed_;
  nn::Sequential model_;
};

}  // namespace trustddl::baselines::securenn
