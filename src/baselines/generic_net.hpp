// Generic secure network over a pluggable MPC backend.
//
// The SecureNN and Falcon baselines share the exact same layer
// orchestration (im2col, caching, fused softmax+cross-entropy
// backward, SGD) and differ only in how shares are represented and how
// the four protocol primitives (matmul, relu mask, softmax, reveal)
// are realized.  This template captures the orchestration once; each
// baseline provides a Backend.
//
// Backend concept:
//   using Share;    // value type holding this party's share(s)
//   using Context;  // per-party protocol state (endpoint, RNGs, ...)
//   static Share matmul(Context&, const Share& x, const Share& w);
//       // [m,k] x [k,n], fixed-point rescaled
//   static RingTensor relu_mask(Context&, const Share& x);
//       // public 0/1 mask, revealed as in the original protocols
//   static void mul_public(Share&, const RingTensor& mask);
//   static Share softmax(Context&, const Share& logits);
//   static Share sub(const Share&, const Share&);
//   static void add_assign(Share&, const Share&);
//   static void sub_assign(Share&, const Share&);
//   static Share transform(const Share&, fn);  // per-component local op
//   static void add_row_broadcast(Share&, const Share& bias);
//   static void add_col_broadcast(Share&, const Share& bias);
//   static Share scale_truncate(Context&, const Share&, double factor);
//   static Share matmul_grad(Context&, const Share&, const Share&);
//       // product for WEIGHT gradients; backends may keep the 2f
//       // scale to defer (and fuse) the rescale into rescale_grad
//   static Share rescale_grad(Context&, const Share&, double factor);
//       // lr-scale + whatever truncation matmul_grad deferred
//   static Share zeros_like(const Share&);
//   static const Shape& shape(const Share&);
#pragma once

#include <vector>

#include "nn/model_zoo.hpp"
#include "numeric/conv.hpp"

namespace trustddl::baselines {

template <typename Backend>
class GenericNet {
 public:
  using Share = typename Backend::Share;
  using Context = typename Backend::Context;

  /// `params` in nn::Sequential::parameters() order.
  GenericNet(const nn::ModelSpec& spec, std::vector<Share> params) {
    nn::validate_spec(spec);
    std::size_t next = 0;
    for (const nn::LayerSpec& layer_spec : spec.layers) {
      Layer layer;
      layer.kind = layer_spec.kind;
      layer.conv = layer_spec.conv;
      layer.pool = layer_spec.pool;
      if (layer_spec.kind == nn::LayerSpec::Kind::kConv ||
          layer_spec.kind == nn::LayerSpec::Kind::kDense) {
        layer.weights = std::move(params[next++]);
        layer.bias = std::move(params[next++]);
        layer.weights_grad = Backend::zeros_like(layer.weights);
        layer.bias_grad = Backend::zeros_like(layer.bias);
      }
      layers_.push_back(std::move(layer));
    }
  }

  Share forward(Context& ctx, const Share& input) {
    Share activation = input;
    for (Layer& layer : layers_) {
      activation = layer_forward(ctx, layer, activation);
    }
    return activation;
  }

  /// Backward from the fused softmax+cross-entropy gradient (p - y);
  /// the trailing softmax layer is skipped.
  void backward(Context& ctx, const Share& grad_logits) {
    Share grad = grad_logits;
    for (std::size_t i = layers_.size() - 1; i-- > 0;) {
      grad = layer_backward(ctx, layers_[i], grad);
    }
  }

  /// Current parameter shares in construction order (W, b per
  /// trainable layer) — for end-of-session weight reveals.
  std::vector<Share> parameter_shares() const {
    std::vector<Share> out;
    for (const Layer& layer : layers_) {
      if (layer.kind == nn::LayerSpec::Kind::kConv ||
          layer.kind == nn::LayerSpec::Kind::kDense) {
        out.push_back(layer.weights);
        out.push_back(layer.bias);
      }
    }
    return out;
  }

  void sgd(Context& ctx, double learning_rate, int /*frac_bits*/) {
    for (Layer& layer : layers_) {
      if (layer.kind != nn::LayerSpec::Kind::kConv &&
          layer.kind != nn::LayerSpec::Kind::kDense) {
        continue;
      }
      Backend::sub_assign(
          layer.weights,
          Backend::rescale_grad(ctx, layer.weights_grad, learning_rate));
      Backend::sub_assign(
          layer.bias,
          Backend::scale_truncate(ctx, layer.bias_grad, learning_rate));
      layer.weights_grad = Backend::zeros_like(layer.weights);
      layer.bias_grad = Backend::zeros_like(layer.bias);
    }
  }

 private:
  struct Layer {
    nn::LayerSpec::Kind kind = nn::LayerSpec::Kind::kRelu;
    ConvSpec conv;
    nn::PoolSpec pool;
    Share weights;
    Share bias;
    Share weights_grad;
    Share bias_grad;
    Share cached_input;    // dense: x; conv: im2col columns
    RingTensor relu_mask;  // relu
    /// Public per-(sample, pool) argmax input index (maxpool).
    std::vector<std::vector<std::size_t>> pool_argmax;
    std::size_t cached_batch = 0;
  };

  Share layer_forward(Context& ctx, Layer& layer, const Share& input) {
    switch (layer.kind) {
      case nn::LayerSpec::Kind::kDense: {
        layer.cached_input = input;
        Share output = Backend::matmul(ctx, input, layer.weights);
        Backend::add_row_broadcast(output, layer.bias);
        return output;
      }
      case nn::LayerSpec::Kind::kConv: {
        const std::size_t batch = Backend::shape(input)[0];
        layer.cached_batch = batch;
        const ConvSpec& spec = layer.conv;
        layer.cached_input =
            Backend::transform(input, [&](const RingTensor& x) {
              return batch_im2col(x, spec);
            });
        Share maps =
            Backend::matmul(ctx, layer.weights, layer.cached_input);
        Backend::add_col_broadcast(maps, layer.bias);
        const std::size_t pixels = spec.col_cols();
        return Backend::transform(maps, [&](const RingTensor& m) {
          return maps_to_rows(m, batch, pixels);
        });
      }
      case nn::LayerSpec::Kind::kRelu: {
        layer.relu_mask = Backend::relu_mask(ctx, input);
        Share output = input;
        Backend::mul_public(output, layer.relu_mask);
        return output;
      }
      case nn::LayerSpec::Kind::kSoftmax:
        return Backend::softmax(ctx, input);
      case nn::LayerSpec::Kind::kMaxPool:
        return maxpool_forward(ctx, layer, input);
    }
    return input;
  }

  /// Max pooling built from the backend primitives alone: a tournament
  /// of pairwise comparisons where each round reveals a sign mask
  /// (relu_mask of the difference) and selects winners locally —
  /// mirroring core::SecureMaxPool.
  Share maxpool_forward(Context& ctx, Layer& layer, const Share& input) {
    const nn::PoolSpec& spec = layer.pool;
    const std::size_t batch = Backend::shape(input)[0];
    const std::size_t pools = spec.out_features();
    layer.cached_batch = batch;

    const std::size_t window_size = spec.window * spec.window;
    std::vector<std::vector<std::size_t>> slot_index(
        window_size, std::vector<std::size_t>(pools));
    {
      std::size_t pool = 0;
      for (std::size_t channel = 0; channel < spec.channels; ++channel) {
        for (std::size_t oy = 0; oy < spec.out_height(); ++oy) {
          for (std::size_t ox = 0; ox < spec.out_width(); ++ox) {
            for (std::size_t wy = 0; wy < spec.window; ++wy) {
              for (std::size_t wx = 0; wx < spec.window; ++wx) {
                slot_index[wy * spec.window + wx][pool] =
                    spec.input_index(channel, oy, ox, wy, wx);
              }
            }
            ++pool;
          }
        }
      }
    }

    struct Candidate {
      Share share;
      std::vector<std::size_t> source;  // per (sample, pool)
    };
    std::vector<Candidate> candidates;
    for (std::size_t slot = 0; slot < window_size; ++slot) {
      Candidate candidate;
      candidate.share =
          Backend::transform(input, [&](const RingTensor& component) {
            RingTensor gathered(Shape{batch, pools});
            for (std::size_t sample = 0; sample < batch; ++sample) {
              for (std::size_t pool = 0; pool < pools; ++pool) {
                gathered.at(sample, pool) =
                    component.at(sample, slot_index[slot][pool]);
              }
            }
            return gathered;
          });
      candidate.source.resize(batch * pools);
      for (std::size_t sample = 0; sample < batch; ++sample) {
        for (std::size_t pool = 0; pool < pools; ++pool) {
          candidate.source[sample * pools + pool] = slot_index[slot][pool];
        }
      }
      candidates.push_back(std::move(candidate));
    }

    while (candidates.size() > 1) {
      std::vector<Candidate> next;
      for (std::size_t i = 0; i + 1 < candidates.size(); i += 2) {
        Candidate& lhs = candidates[i];
        Candidate& rhs = candidates[i + 1];
        Share diff = Backend::sub(lhs.share, rhs.share);
        const RingTensor mask = Backend::relu_mask(ctx, diff);
        Backend::mul_public(diff, mask);  // mask (.) (lhs - rhs)
        Candidate winner;
        winner.share = diff;
        Backend::add_assign(winner.share, rhs.share);
        winner.source.resize(lhs.source.size());
        for (std::size_t e = 0; e < winner.source.size(); ++e) {
          winner.source[e] = mask[e] != 0 ? lhs.source[e] : rhs.source[e];
        }
        next.push_back(std::move(winner));
      }
      if (candidates.size() % 2 == 1) {
        next.push_back(std::move(candidates.back()));
      }
      candidates = std::move(next);
    }

    layer.pool_argmax.assign(batch, std::vector<std::size_t>(pools));
    for (std::size_t sample = 0; sample < batch; ++sample) {
      for (std::size_t pool = 0; pool < pools; ++pool) {
        layer.pool_argmax[sample][pool] =
            candidates[0].source[sample * pools + pool];
      }
    }
    return std::move(candidates[0].share);
  }

  Share layer_backward(Context& ctx, Layer& layer, const Share& grad) {
    switch (layer.kind) {
      case nn::LayerSpec::Kind::kDense: {
        const Share input_t =
            Backend::transform(layer.cached_input, [](const RingTensor& x) {
              return transpose(x);
            });
        Backend::add_assign(layer.weights_grad,
                            Backend::matmul_grad(ctx, input_t, grad));
        Backend::add_assign(
            layer.bias_grad,
            Backend::transform(grad, [](const RingTensor& g) {
              return sum_rows(g);
            }));
        const Share weights_t =
            Backend::transform(layer.weights, [](const RingTensor& w) {
              return transpose(w);
            });
        return Backend::matmul(ctx, grad, weights_t);
      }
      case nn::LayerSpec::Kind::kConv: {
        const ConvSpec& spec = layer.conv;
        const std::size_t batch = layer.cached_batch;
        const std::size_t pixels = spec.col_cols();
        const Share grad_maps =
            Backend::transform(grad, [&](const RingTensor& g) {
              return rows_to_maps(g, spec.out_channels, pixels);
            });
        const Share columns_t =
            Backend::transform(layer.cached_input, [](const RingTensor& c) {
              return transpose(c);
            });
        Backend::add_assign(layer.weights_grad,
                            Backend::matmul_grad(ctx, grad_maps, columns_t));
        Backend::add_assign(
            layer.bias_grad,
            Backend::transform(grad_maps, [](const RingTensor& g) {
              return sum_cols(g);
            }));
        const Share weights_t =
            Backend::transform(layer.weights, [](const RingTensor& w) {
              return transpose(w);
            });
        const Share grad_columns =
            Backend::matmul(ctx, weights_t, grad_maps);
        return Backend::transform(grad_columns, [&](const RingTensor& c) {
          return batch_col2im(c, spec, batch);
        });
      }
      case nn::LayerSpec::Kind::kRelu: {
        Share output = grad;
        Backend::mul_public(output, layer.relu_mask);
        return output;
      }
      case nn::LayerSpec::Kind::kSoftmax:
        return grad;  // fused path never reaches here
      case nn::LayerSpec::Kind::kMaxPool: {
        const nn::PoolSpec& spec = layer.pool;
        const std::size_t pools = spec.out_features();
        const std::size_t batch = layer.cached_batch;
        return Backend::transform(grad, [&](const RingTensor& component) {
          RingTensor scattered(Shape{batch, spec.in_features()});
          for (std::size_t sample = 0; sample < batch; ++sample) {
            for (std::size_t pool = 0; pool < pools; ++pool) {
              scattered.at(sample, layer.pool_argmax[sample][pool]) +=
                  component.at(sample, pool);
            }
          }
          return scattered;
        });
      }
    }
    return grad;
  }

  std::vector<Layer> layers_;
};

}  // namespace trustddl::baselines
