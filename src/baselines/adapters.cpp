#include "baselines/adapters.hpp"

#include "nn/loss.hpp"

namespace trustddl::baselines {
namespace {

std::vector<std::size_t> labels_from_onehot(const RealTensor& onehot) {
  std::vector<std::size_t> labels(onehot.rows());
  for (std::size_t row = 0; row < onehot.rows(); ++row) {
    labels[row] = argmax(RealTensor(
        Shape{onehot.cols()},
        std::vector<double>(
            onehot.values().begin() +
                static_cast<std::ptrdiff_t>(row * onehot.cols()),
            onehot.values().begin() +
                static_cast<std::ptrdiff_t>((row + 1) * onehot.cols()))));
  }
  return labels;
}

}  // namespace

EngineFramework::EngineFramework(std::string label, nn::ModelSpec spec,
                                 core::EngineConfig config)
    : label_(std::move(label)),
      config_(config),
      engine_(std::move(spec), config) {}

StepCost EngineFramework::train(const RealTensor& images,
                                const RealTensor& onehot,
                                double learning_rate, int steps) {
  data::Dataset batch;
  batch.images = images;
  batch.labels = labels_from_onehot(onehot);

  core::TrainOptions options;
  options.epochs = static_cast<std::size_t>(steps);  // 1 step per epoch
  options.batch_size = images.rows();
  options.learning_rate = learning_rate;
  options.evaluate_each_epoch = false;
  options.reveal_weights = false;  // isolate per-step protocol cost

  const core::TrainResult result =
      engine_.train(batch, batch, options);
  return StepCost{result.cost.wall_seconds, result.cost.total_bytes,
                  result.cost.total_messages};
}

StepCost EngineFramework::infer(const RealTensor& images, int repeats,
                                std::vector<std::size_t>* predictions) {
  data::Dataset inputs;
  const std::size_t rows = images.rows();
  inputs.images =
      RealTensor(Shape{rows * static_cast<std::size_t>(repeats),
                       images.cols()});
  inputs.labels.assign(rows * static_cast<std::size_t>(repeats), 0);
  for (int repeat = 0; repeat < repeats; ++repeat) {
    for (std::size_t row = 0; row < rows; ++row) {
      for (std::size_t col = 0; col < images.cols(); ++col) {
        inputs.images.at(static_cast<std::size_t>(repeat) * rows + row, col) =
            images.at(row, col);
      }
    }
  }
  const core::InferResult result = engine_.infer(inputs, rows);
  if (predictions != nullptr) {
    predictions->assign(result.labels.end() - static_cast<std::ptrdiff_t>(rows),
                        result.labels.end());
  }
  return StepCost{result.cost.wall_seconds, result.cost.total_bytes,
                  result.cost.total_messages};
}

std::unique_ptr<Framework> make_trustddl(nn::ModelSpec spec,
                                         mpc::SecurityMode mode,
                                         std::uint64_t seed) {
  core::EngineConfig config;
  config.mode = mode;
  config.seed = seed;
  return std::make_unique<EngineFramework>("TrustDDL", std::move(spec),
                                           config);
}

std::unique_ptr<Framework> make_safeml(nn::ModelSpec spec,
                                       std::uint64_t seed) {
  core::EngineConfig config;
  config.mode = mpc::SecurityMode::kCrashFault;
  config.seed = seed;
  return std::make_unique<EngineFramework>("SafeML", std::move(spec),
                                           config);
}

}  // namespace trustddl::baselines
