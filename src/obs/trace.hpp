// Protocol-phase tracer: JSONL spans for robust-opening phases
// (commit/confirm/exchange/decide), BT protocol invocations, per-layer
// forward/backward and OpenBatch round boundaries.
//
// A `ScopedSpan` is inert (no clock read) unless tracing or metrics
// are enabled.  On destruction it (a) appends one JSONL line to the
// trace file when tracing, and (b) folds its duration into the
// `span.<name>.us` / `span.<name>.count` counters when metrics are on
// — which is how `bench_table2_cost --phases` produces its per-phase
// breakdown without parsing the trace.
//
// Span names are `const char*` literals at every call site so the
// disabled path never allocates.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

namespace trustddl::obs {

class Tracer {
 public:
  static Tracer& global();

  /// Opens (truncates) `path` and enables tracing process-wide.
  void open(const std::string& path);
  void close();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one JSONL record.  `kind` is "span", "instant" or
  /// "event"; `extra` is raw pre-rendered JSON members appended after
  /// the standard fields (may be empty).
  void emit(const char* kind, const char* name, int party,
            std::uint64_t step, std::uint64_t ts_us, std::uint64_t dur_us,
            const std::string& extra = std::string());

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::mutex mu_;
  std::unique_ptr<std::ofstream> out_;
};

inline bool tracing_enabled() { return Tracer::global().enabled(); }

/// Microseconds since process start (steady clock).
std::uint64_t now_us();

/// RAII span.  Durations land in the tracer and/or the metrics
/// registry; when both are disabled the constructor does one relaxed
/// load and nothing else.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, int party = -1,
                      std::uint64_t step = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  int party_;
  std::uint64_t step_;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

/// Zero-duration marker (e.g. an OpenBatch flush boundary).  `extra`
/// follows the Tracer::emit convention.
void trace_instant(const char* name, int party, std::uint64_t step,
                   const std::string& extra = std::string());

}  // namespace trustddl::obs
