// Protocol-phase tracer: JSONL spans for robust-opening phases
// (commit/confirm/exchange/decide), BT protocol invocations, per-layer
// forward/backward and OpenBatch round boundaries.
//
// A `ScopedSpan` is inert (no clock read) unless tracing or metrics
// are enabled.  On destruction it (a) appends one JSONL line to the
// trace file when tracing, and (b) folds its duration into the
// `span.<name>.us` / `span.<name>.count` counters when metrics are on
// — which is how `bench_table2_cost --phases` produces its per-phase
// breakdown without parsing the trace.
//
// Span names are `const char*` literals at every call site so the
// disabled path never allocates.
//
// Concurrency: every thread formats records into its own buffer (one
// small mutex per thread, never contended except against the drain),
// so a 4-thread kernel pool tracing spans no longer convoys on one
// global file lock.  Buffers drain to the file when they exceed a few
// KB and at close(); whole records move atomically, so the JSONL stays
// one-record-per-line no matter how threads interleave.
//
// Cross-process correlation: the first line of every trace file is a
// `"kind": "meta"` record carrying `wall_epoch_us` (system clock) next
// to the process-local steady `ts_us`, which lets merge_traces.py map
// N per-process traces onto one wall-clock axis.  A `CorrelationScope`
// installs a thread-local correlation id (e.g. `batch:17`,
// `round:0:3`, `req:5:12`) that every span/instant emitted by the
// thread carries as a `"corr"` member — the join key for per-request
// causal timelines across the owner-sequencer and the three parties.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace trustddl::obs {

class Tracer {
 public:
  static Tracer& global();

  /// Opens (truncates) `path`, writes the wall-clock meta record and
  /// enables tracing process-wide.
  void open(const std::string& path);

  /// Disables tracing, drains every thread's buffer and closes the
  /// file.  Records emitted concurrently with close() may be dropped
  /// (tracing is best-effort at shutdown), never torn.
  void close();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one JSONL record.  `kind` is "span", "instant", "event"
  /// or "meta"; `extra` is raw pre-rendered JSON members appended
  /// after the standard fields (may be empty).
  void emit(const char* kind, const char* name, int party,
            std::uint64_t step, std::uint64_t ts_us, std::uint64_t dur_us,
            const std::string& extra = std::string());

 private:
  Tracer() = default;

  /// One thread's pending records.  The mutex only synchronises the
  /// owning thread against close()/drain — it is uncontended on the
  /// emit fast path.
  struct ThreadBuffer {
    std::mutex mu;
    std::string data;
  };

  std::shared_ptr<ThreadBuffer> buffer_for_current_thread();
  void write_locked(const std::string& data);

  std::atomic<bool> enabled_{false};
  /// Bumped by open(); threads holding a buffer from a previous
  /// open/close cycle re-register instead of writing to a dead buffer.
  std::atomic<std::uint64_t> epoch_{0};
  std::mutex mu_;  // file + buffer registry
  std::unique_ptr<std::ofstream> out_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

inline bool tracing_enabled() { return Tracer::global().enabled(); }

/// Microseconds since process start (steady clock).
std::uint64_t now_us();

/// Microseconds since the Unix epoch (system clock) — only used for
/// the per-file meta record that anchors steady timestamps to wall
/// time across processes.
std::uint64_t wall_epoch_us();

/// Thread-local correlation id.  While a scope is alive, every span
/// and instant emitted by this thread carries `"corr": "<id>"`, so a
/// manifest-derived id set once per batch/round annotates every nested
/// protocol span (OpenBatch flushes included) without plumbing an
/// argument through the call tree.  Scopes nest; the previous id is
/// restored on destruction.  A no-op when tracing is disabled.
class CorrelationScope {
 public:
  explicit CorrelationScope(std::string id);
  ~CorrelationScope();

  CorrelationScope(const CorrelationScope&) = delete;
  CorrelationScope& operator=(const CorrelationScope&) = delete;

  /// The active id ("" when none); only meaningful while tracing.
  static const std::string& current();

 private:
  std::string previous_;
  bool active_ = false;
};

/// RAII span.  Durations land in the tracer and/or the metrics
/// registry; when both are disabled the constructor does one relaxed
/// load and nothing else.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, int party = -1,
                      std::uint64_t step = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  int party_;
  std::uint64_t step_;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

/// Zero-duration marker (e.g. an OpenBatch flush boundary).  `extra`
/// follows the Tracer::emit convention.
void trace_instant(const char* name, int party, std::uint64_t step,
                   const std::string& extra = std::string());

}  // namespace trustddl::obs
