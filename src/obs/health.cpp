#include "obs/health.hpp"

#include "obs/trace.hpp"

namespace trustddl::obs {
namespace {

std::atomic<bool> g_health_enabled{false};

}  // namespace

bool health_enabled() {
  return g_health_enabled.load(std::memory_order_relaxed);
}

void set_health_enabled(bool enabled) {
  g_health_enabled.store(enabled, std::memory_order_relaxed);
}

HealthState& HealthState::global() {
  static HealthState* state = new HealthState();
  return *state;
}

void HealthState::note_peer(int peer) {
  if (!health_enabled() || peer < 0 || peer >= kMaxPeers) {
    return;
  }
  // 0 means "never seen", so clamp the first stamp to at least 1 us.
  const std::uint64_t now = now_us();
  last_seen_us_[static_cast<std::size_t>(peer)].store(
      now == 0 ? 1 : now, std::memory_order_relaxed);
  active_[static_cast<std::size_t>(peer)].store(1, std::memory_order_relaxed);
}

void HealthState::note_peer_departed(int peer) {
  if (!health_enabled() || peer < 0 || peer >= kMaxPeers) {
    return;
  }
  active_[static_cast<std::size_t>(peer)].store(0, std::memory_order_relaxed);
}

void HealthState::note_progress(const std::string& key, std::uint64_t value) {
  if (!health_enabled()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : watermarks_) {
    if (entry.first == key) {
      if (value > entry.second) {
        entry.second = value;
      }
      return;
    }
  }
  watermarks_.emplace_back(key, value);
}

void HealthState::set_identity(const std::string& role,
                               const std::string& task) {
  const std::lock_guard<std::mutex> lock(mu_);
  role_ = role;
  task_ = task;
}

void HealthState::set_pod(const std::string& pod) {
  const std::lock_guard<std::mutex> lock(mu_);
  pod_ = pod;
}

std::vector<HealthState::PeerSample> HealthState::peers() const {
  std::vector<PeerSample> out;
  for (int peer = 0; peer < kMaxPeers; ++peer) {
    const std::uint64_t seen =
        last_seen_us_[static_cast<std::size_t>(peer)].load(
            std::memory_order_relaxed);
    const bool active =
        active_[static_cast<std::size_t>(peer)].load(
            std::memory_order_relaxed) != 0;
    if (seen != 0 && active) {
      out.push_back(PeerSample{peer, seen});
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> HealthState::watermarks()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  return watermarks_;
}

std::string HealthState::role() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return role_;
}

std::string HealthState::task() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return task_;
}

std::string HealthState::pod() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return pod_;
}

void HealthState::reset() {
  for (auto& slot : last_seen_us_) {
    slot.store(0, std::memory_order_relaxed);
  }
  for (auto& slot : active_) {
    slot.store(0, std::memory_order_relaxed);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  watermarks_.clear();
  role_.clear();
  task_.clear();
  pod_.clear();
}

}  // namespace trustddl::obs
