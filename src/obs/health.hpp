// Liveness bookkeeping behind the admin endpoint's /healthz.
//
// Two signals, both cheap enough to feed from hot paths:
//  - per-peer heartbeats: the transport reader loop stamps
//    `note_peer(sender)` on every received frame (one relaxed atomic
//    store when health tracking is on, one relaxed load when off), so
//    "freshness" is simply now - last frame from that peer;
//  - progress watermarks: serve/train loops record the last completed
//    batch/round index under a named key, so a stuck pipeline is
//    visible even while peers keep chattering.
//
// Tracking is off by default (`health_enabled()` mirrors the
// metrics-gate pattern) and is switched on by AdminServer::start or
// explicitly in tests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace trustddl::obs {

bool health_enabled();
void set_health_enabled(bool enabled);

class HealthState {
 public:
  /// Largest actor id trackable as a peer; serve clients / train
  /// owners start at core::kNumActors and stay small in practice.
  static constexpr int kMaxPeers = 256;

  static HealthState& global();

  /// Records receipt of a frame from `peer` (no-op when health
  /// tracking is disabled or the id is out of range).
  void note_peer(int peer);

  /// Records that `peer` disconnected cleanly (client churn in fleet
  /// deployments).  Departed peers drop out of peers() so a gone
  /// client does not read as a permanently stale link; a later
  /// note_peer (reconnect) revives the entry.
  void note_peer_departed(int peer);

  /// Records a monotonic progress watermark, e.g.
  /// note_progress("serve.last_batch", index).
  void note_progress(const std::string& key, std::uint64_t value);

  /// Role/task strings surfaced by /healthz and /status.
  void set_identity(const std::string& role, const std::string& task);

  /// Pod name for fleet deployments; empty outside a fleet.  When
  /// set, serve.* metric families carry a `pod` label in the
  /// Prometheus exposition and /healthz//status report it.
  void set_pod(const std::string& pod);

  struct PeerSample {
    int peer;
    std::uint64_t last_seen_us;  // now_us() timebase
  };

  /// Peers seen at least once, ascending by id.
  std::vector<PeerSample> peers() const;
  std::vector<std::pair<std::string, std::uint64_t>> watermarks() const;
  std::string role() const;
  std::string task() const;
  std::string pod() const;

  /// Clears all state (tests).
  void reset();

 private:
  HealthState() = default;

  std::array<std::atomic<std::uint64_t>, kMaxPeers> last_seen_us_{};
  // 1 once a frame arrived, 0 after a clean departure; peers() only
  // reports slots that are both stamped and active.
  std::array<std::atomic<std::uint8_t>, kMaxPeers> active_{};
  mutable std::mutex mu_;  // watermarks + identity
  std::vector<std::pair<std::string, std::uint64_t>> watermarks_;
  std::string role_;
  std::string task_;
  std::string pod_;
};

}  // namespace trustddl::obs
