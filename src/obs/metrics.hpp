// Runtime-gated metrics registry (the telemetry spine of DESIGN.md
// §Observability).
//
// Instruments are process-global, thread-safe and ~free when metrics
// are disabled: every hot-path update first reads one relaxed atomic
// flag and returns.  Enabled updates are single relaxed atomic RMWs —
// no locks on the update path — so kernel-pool workers, transport
// reader threads and the three party threads can all hammer the same
// counter.  Registration (name -> instrument) is mutex-protected and
// returns stable references; `reset()` zeroes values without
// invalidating references, so cached `Counter&`s survive across runs.
//
// Naming scheme: dot-separated `<layer>.<thing>[.<class>]`, e.g.
// `net.sent.bytes.s`, `kernels.chunks.worker`, `span.open.commit.us`.
// The TRUSTDDL_METRICS environment variable (any non-empty value
// except "0") enables collection at process start; the engine and
// `trustddl_party --metrics-out` enable it programmatically.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace trustddl::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// The global collection gate.  One relaxed load — this is the entire
/// disabled-mode overhead of every instrument update.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled);

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    if (metrics_enabled()) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Signed gauge with a high-water mark (e.g. mailbox queue depth: the
/// current value is usually 0 by export time; the peak is the signal).
class Gauge {
 public:
  void add(std::int64_t delta);
  void sub(std::int64_t delta) { add(-delta); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Fixed-bucket histogram for latencies (microseconds) and sizes
/// (bytes).  Bucket i counts samples <= 4^i; the last bucket is the
/// overflow.  Power-of-four bounds span 1 .. ~2.7e8 in 16 buckets,
/// which covers both sub-millisecond recv waits and multi-second
/// stalls (or byte sizes up to ~256 MiB).
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 16;

  /// Upper bound of bucket `index` (4^index); the final bucket has no
  /// bound (overflow).
  static std::uint64_t bucket_bound(std::size_t index);

  void observe(std::uint64_t sample);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Point-in-time copy of every registered instrument, sorted by name
/// (deterministic export).
struct MetricsSnapshot {
  struct GaugeData {
    std::string name;
    std::int64_t value = 0;
    std::int64_t peak = 0;
  };
  struct HistogramData {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<GaugeData> gauges;
  std::vector<HistogramData> histograms;

  /// Sum of every counter whose name starts with `prefix`.
  std::uint64_t counter_sum(const std::string& prefix) const;

  /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
  std::string to_json() const;
};

/// Process-global name -> instrument table.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Look up or create; the returned reference is stable for the
  /// process lifetime (reset() zeroes values, never removes entries).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Convenience wrappers for call sites with dynamic names (per-tag-
/// class transport counters).  No-ops when metrics are disabled — the
/// name string need not even be built by callers that check
/// metrics_enabled() first.
void count(const std::string& name, std::uint64_t delta = 1);
void gauge_add(const std::string& name, std::int64_t delta);
void observe(const std::string& name, std::uint64_t sample);

}  // namespace trustddl::obs
