#include "obs/admin_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "obs/events.hpp"
#include "obs/health.hpp"
#include "obs/trace.hpp"

namespace trustddl::obs {
namespace {

constexpr std::size_t kMaxRequestBytes = 4096;
constexpr int kAcceptPollMs = 200;

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 16);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prometheus_name(const std::string& name) {
  std::string out = "trustddl_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

/// `?n=50` -> value of `n`, or `fallback` when absent/garbled.
std::uint64_t query_u64(const std::string& query, const std::string& key,
                        std::uint64_t fallback) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) {
      end = query.size();
    }
    const std::string part = query.substr(pos, end - pos);
    if (part.rfind(needle, 0) == 0) {
      const std::string value = part.substr(needle.size());
      if (!value.empty() &&
          value.find_first_not_of("0123456789") == std::string::npos) {
        return std::stoull(value);
      }
      return fallback;
    }
    pos = end + 1;
  }
  return fallback;
}

std::string query_value(const std::string& query, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) {
      end = query.size();
    }
    const std::string part = query.substr(pos, end - pos);
    if (part.rfind(needle, 0) == 0) {
      return part.substr(needle.size());
    }
    pos = end + 1;
  }
  return std::string();
}

/// Fallback /metrics document when the host process installed no
/// provider: the trustddl.metrics.v1 layout with an empty 1x1 traffic
/// matrix and a zero cost report (owner CLIs, tests).
std::string registry_only_export(const MetricsSnapshot& snapshot) {
  std::string out = "{\n";
  out += "  \"schema\": \"trustddl.metrics.v1\",\n";
  out += "  \"metrics\": " + snapshot.to_json() + ",\n";
  out += "  \"events\": " +
         EventLog::to_json(EventLog::global().snapshot()) + ",\n";
  out +=
      "  \"traffic\": {\"total_bytes\": 0, \"total_messages\": 0, "
      "\"links_bytes\": [[0]], \"links_messages\": [[0]]},\n";
  out += "  \"cost\": {\"wall_seconds\": " + format_double(0.0);
  out +=
      ", \"total_bytes\": 0, \"total_messages\": 0, \"proxy_bytes\": 0"
      ", \"owner_bytes\": 0, \"commitment_violations\": 0"
      ", \"distance_anomalies\": 0, \"share_auth_failures\": 0"
      ", \"recovered_opens\": 0, \"opening_rounds\": 0"
      ", \"values_opened\": 0}\n}\n";
  return out;
}

std::string http_response(int status, const std::string& content_type,
                          const std::string& body) {
  const char* reason = "OK";
  switch (status) {
    case 200:
      reason = "OK";
      break;
    case 400:
      reason = "Bad Request";
      break;
    case 404:
      reason = "Not Found";
      break;
    case 405:
      reason = "Method Not Allowed";
      break;
    case 503:
      reason = "Service Unavailable";
      break;
    default:
      reason = "OK";
      break;
  }
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      return;  // peer went away; scrapes are best-effort
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  // Fleet deployments label the serve.* families with the pod that
  // produced them, so one Prometheus scrape config covers N pods and
  // the fleet roll-up can group by the `pod` dimension.  Other
  // families (net.*, admin.*, span.*) stay label-free: they describe
  // this process, not the pod-level serving ledger.
  const std::string pod = HealthState::global().pod();
  const auto pod_label = [&](const std::string& name) {
    return (!pod.empty() && name.rfind("serve.", 0) == 0)
               ? "{pod=\"" + pod + "\"}"
               : std::string();
  };
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + pod_label(name) + " " + std::to_string(value) + "\n";
  }
  for (const auto& gauge : snapshot.gauges) {
    const std::string prom = prometheus_name(gauge.name);
    const std::string label = pod_label(gauge.name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + label + " " + std::to_string(gauge.value) + "\n";
    out += "# TYPE " + prom + "_peak gauge\n";
    out += prom + "_peak" + label + " " + std::to_string(gauge.peak) + "\n";
  }
  for (const auto& hist : snapshot.histograms) {
    const std::string prom = prometheus_name(hist.name);
    const std::string label = pod_label(hist.name);
    // Bucket labels compose pod-then-le so every serve series carries
    // a consistent label order.
    const std::string bucket_prefix =
        label.empty() ? "{" : label.substr(0, label.size() - 1) + ",";
    out += "# TYPE " + prom + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      cumulative += hist.buckets[i];
      const std::string bound =
          i + 1 == Histogram::kBucketCount
              ? std::string("+Inf")
              : std::to_string(Histogram::bucket_bound(i));
      out += prom + "_bucket" + bucket_prefix + "le=\"" + bound + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_count" + label + " " + std::to_string(hist.count) + "\n";
    out += prom + "_sum" + label + " " + std::to_string(hist.sum) + "\n";
  }
  return out;
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::set_metrics_provider(MetricsProvider provider) {
  const std::lock_guard<std::mutex> lock(provider_mu_);
  provider_ = std::move(provider);
}

void AdminServer::start() {
  TRUSTDDL_REQUIRE(!running(), "admin server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  TRUSTDDL_REQUIRE(listen_fd_ >= 0, "admin server: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  TRUSTDDL_REQUIRE(
      ::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) == 1,
      "admin server: bad host " + options_.host);
  TRUSTDDL_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "admin server: bind failed on " + options_.host + ":" +
                       std::to_string(options_.port));
  TRUSTDDL_REQUIRE(::listen(listen_fd_, 16) == 0,
                   "admin server: listen failed");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  TRUSTDDL_REQUIRE(::getsockname(listen_fd_,
                                 reinterpret_cast<sockaddr*>(&bound),
                                 &len) == 0,
                   "admin server: getsockname failed");
  port_ = static_cast<int>(ntohs(bound.sin_port));

  set_health_enabled(true);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void AdminServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminServer::serve_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void AdminServer::handle_connection(int fd) {
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buffer[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      break;
    }
    request.append(buffer, static_cast<std::size_t>(n));
  }

  requests_served_.fetch_add(1, std::memory_order_relaxed);

  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    count("admin.http.errors");
    send_all(fd, http_response(400, "text/plain", "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    count("admin.http.errors");
    send_all(fd, http_response(405, "text/plain", "method not allowed\n"));
    return;
  }

  int status = 200;
  const std::string body = dispatch(target, status);
  const std::string content_type =
      body.rfind("{", 0) == 0 || body.rfind("[", 0) == 0
          ? "application/json"
          : "text/plain; version=0.0.4";
  send_all(fd, http_response(status, content_type, body));
}

std::string AdminServer::dispatch(const std::string& target, int& status) {
  const std::size_t qmark = target.find('?');
  const std::string path =
      qmark == std::string::npos ? target : target.substr(0, qmark);
  const std::string query =
      qmark == std::string::npos ? std::string() : target.substr(qmark + 1);

  if (path == "/healthz") {
    count("admin.requests.healthz");
    return healthz_body(status);
  }
  if (path == "/metrics") {
    count("admin.requests.metrics");
    return metrics_body(query);
  }
  if (path == "/events") {
    count("admin.requests.events");
    return events_body(query);
  }
  if (path == "/status") {
    count("admin.requests.status");
    return status_body();
  }
  count("admin.http.errors");
  status = 404;
  return "not found\n";
}

std::string AdminServer::metrics_body(const std::string& query) {
  const std::string format = query_value(query, "format");
  // Snapshot AFTER counting the scrape so the document (and any paired
  // Prometheus rendering) already includes this request — that is what
  // makes a quiesced pair scrape internally consistent.
  MetricsProvider provider;
  {
    const std::lock_guard<std::mutex> lock(provider_mu_);
    provider = provider_;
  }
  const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
  if (format == "prometheus") {
    return prometheus_text(snapshot);
  }
  const std::string doc =
      provider ? provider(snapshot) : registry_only_export(snapshot);
  if (format == "pair") {
    std::string out = "{\n";
    out += "  \"schema\": \"trustddl.admin.pair.v1\",\n";
    out += "  \"export\": " + doc;
    if (!out.empty() && out.back() == '\n') {
      out.pop_back();
    }
    out += ",\n  \"prometheus\": \"" + json_escape(prometheus_text(snapshot)) +
           "\"\n}\n";
    return out;
  }
  return doc;
}

std::string AdminServer::healthz_body(int& status) const {
  const auto& health = HealthState::global();
  const std::uint64_t now = now_us();
  const std::uint64_t stale_after_us =
      static_cast<std::uint64_t>(options_.stale_after_ms) * 1000;
  bool any_stale = false;

  std::string peers = "[";
  bool first = true;
  for (const auto& sample : health.peers()) {
    const std::uint64_t age =
        now > sample.last_seen_us ? now - sample.last_seen_us : 0;
    const bool stale = age > stale_after_us;
    any_stale = any_stale || stale;
    if (!first) {
      peers += ", ";
    }
    first = false;
    peers += "{\"peer\": " + std::to_string(sample.peer) +
             ", \"last_seen_us\": " + std::to_string(sample.last_seen_us) +
             ", \"age_us\": " + std::to_string(age) +
             ", \"stale\": " + (stale ? "true" : "false") + "}";
  }
  peers += "]";

  std::string watermarks = "{";
  first = true;
  for (const auto& [key, value] : health.watermarks()) {
    if (!first) {
      watermarks += ", ";
    }
    first = false;
    watermarks += "\"" + json_escape(key) + "\": " + std::to_string(value);
  }
  watermarks += "}";

  status = any_stale ? 503 : 200;
  std::string out = "{\n";
  out += "  \"status\": \"" + std::string(any_stale ? "degraded" : "ok") + "\",\n";
  out += "  \"role\": \"" + json_escape(health.role()) + "\",\n";
  out += "  \"task\": \"" + json_escape(health.task()) + "\",\n";
  if (!health.pod().empty()) {
    out += "  \"pod\": \"" + json_escape(health.pod()) + "\",\n";
  }
  out += "  \"uptime_us\": " + std::to_string(now) + ",\n";
  out += "  \"stale_after_ms\": " + std::to_string(options_.stale_after_ms) +
         ",\n";
  out += "  \"peers\": " + peers + ",\n";
  out += "  \"watermarks\": " + watermarks + "\n}\n";
  return out;
}

std::string AdminServer::events_body(const std::string& query) const {
  const std::uint64_t limit = query_u64(query, "n", 50);
  auto events = EventLog::global().snapshot();
  if (events.size() > limit) {
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(limit));
  }
  return EventLog::to_json(events) + "\n";
}

std::string AdminServer::status_body() const {
  const auto& health = HealthState::global();
  const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();

  std::string out = "{\n";
  out += "  \"role\": \"" + json_escape(health.role()) + "\",\n";
  out += "  \"task\": \"" + json_escape(health.task()) + "\",\n";
  if (!health.pod().empty()) {
    out += "  \"pod\": \"" + json_escape(health.pod()) + "\",\n";
  }
  out += "  \"pid\": " + std::to_string(::getpid()) + ",\n";
  out += "  \"uptime_us\": " + std::to_string(now_us()) + ",\n";
  out += "  \"requests_served\": " + std::to_string(requests_served()) + ",\n";

  out += "  \"watermarks\": {";
  bool first = true;
  for (const auto& [key, value] : health.watermarks()) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "\"" + json_escape(key) + "\": " + std::to_string(value);
  }
  out += "},\n";

  // Queue depths and fill levels live in gauges; ledgers in serve./
  // train./triples. counters.
  out += "  \"gauges\": {";
  first = true;
  for (const auto& gauge : snapshot.gauges) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "\"" + json_escape(gauge.name) + "\": {\"value\": " +
           std::to_string(gauge.value) +
           ", \"peak\": " + std::to_string(gauge.peak) + "}";
  }
  out += "},\n";

  out += "  \"ledgers\": {";
  first = true;
  for (const auto& [name, value] : snapshot.counters) {
    const bool ledger = name.rfind("serve.", 0) == 0 ||
                        name.rfind("train.", 0) == 0 ||
                        name.rfind("triples.", 0) == 0 ||
                        name.rfind("fleet.", 0) == 0 ||
                        name.rfind("admin.", 0) == 0;
    if (!ledger) {
      continue;
    }
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "\"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += "}\n}\n";
  return out;
}

HttpResponse http_get(const std::string& host, int port,
                      const std::string& target, int timeout_ms) {
  HttpResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return response;
  }
  timeval timeout{};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return response;
  }

  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  send_all(fd, request);

  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      break;
    }
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.0 200 OK\r\n...\r\n\r\n<body>"
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || raw.size() < sp + 4) {
    return response;
  }
  response.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t body = raw.find("\r\n\r\n");
  if (body != std::string::npos) {
    response.body = raw.substr(body + 4);
  }
  return response;
}

}  // namespace trustddl::obs
