#include "obs/events.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace trustddl::obs {

bool events_enabled() { return metrics_enabled() || tracing_enabled(); }

EventLog& EventLog::global() {
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::record(const DetectionEventRecord& event) {
  if (!events_enabled()) {
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }
  count(std::string("detect.") + event.kind);
  if (tracing_enabled()) {
    std::ostringstream extra;
    extra << "\"suspect\": " << event.suspect << ", \"phase\": \""
          << event.phase << "\", \"recovery\": \"" << event.recovery << "\"";
    Tracer::global().emit("event", event.kind, event.party, event.step,
                          now_us(), 0, extra.str());
  }
}

std::vector<DetectionEventRecord> EventLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t EventLog::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void EventLog::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string EventLog::to_json(
    const std::vector<DetectionEventRecord>& events) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& event = events[i];
    if (i != 0) {
      out << ", ";
    }
    out << "{\"party\": " << event.party << ", \"suspect\": " << event.suspect
        << ", \"step\": " << event.step << ", \"kind\": \"" << event.kind
        << "\", \"phase\": \"" << event.phase << "\", \"recovery\": \""
        << event.recovery << "\"}";
  }
  out << "]";
  return out.str();
}

}  // namespace trustddl::obs
