// Dependency-free HTTP/1.0 admin endpoint for live introspection of a
// running party/owner process (DESIGN.md §12).
//
// One listener thread accepts loopback connections and answers four
// GET targets, all served off the lock-free metrics registry, the
// event log and the HealthState heartbeats — a scrape never takes a
// protocol lock, so polling a hot party perturbs nothing:
//
//   /healthz              liveness + per-peer heartbeat freshness +
//                         progress watermarks (HTTP 503 when any peer
//                         has been silent longer than stale_after_ms)
//   /metrics              live trustddl.metrics.v1 JSON export
//   /metrics?format=prometheus
//                         Prometheus text exposition of the registry
//   /metrics?format=pair  {"export": <v1 doc>, "prometheus": "<text>"}
//                         — both rendered from ONE snapshot taken
//                         after counting the scrape itself, so the two
//                         views are equal by construction even though
//                         every request increments admin.* counters
//   /events?n=K           detection event log tail (default 50)
//   /status               role/task identity, uptime, watermarks,
//                         queue-depth gauges and serve/train/triple
//                         ledger counters
//
// The process embedding the server supplies the /metrics document via
// set_metrics_provider — trustddl_party installs a closure over its
// live transports so the scrape byte-matches the exit-time
// write_process_export (modulo in-flight deltas on monotonic
// counters); without a provider the server renders the registry +
// event log with zeroed traffic/cost sections.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace trustddl::obs {

struct AdminOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read the bound port via port()
  /// A peer with no received frame for longer than this makes
  /// /healthz report stale (HTTP 503).
  int stale_after_ms = 5000;
};

/// Renders the /metrics body from a registry snapshot the server has
/// already taken (so alternate formats of the same scrape agree).
using MetricsProvider = std::function<std::string(const MetricsSnapshot&)>;

class AdminServer {
 public:
  AdminServer() = default;
  explicit AdminServer(AdminOptions options) : options_(std::move(options)) {}
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  void set_metrics_provider(MetricsProvider provider);

  /// Binds, starts the listener thread and enables health tracking.
  void start();
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int port() const { return port_; }
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);
  std::string dispatch(const std::string& target, int& status);
  std::string metrics_body(const std::string& query);
  std::string healthz_body(int& status) const;
  std::string events_body(const std::string& query) const;
  std::string status_body() const;

  AdminOptions options_;
  MetricsProvider provider_;
  mutable std::mutex provider_mu_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<std::uint64_t> requests_served_{0};
};

/// Prometheus text exposition of a registry snapshot.  Metric names
/// are `trustddl_` + the registry name with non-alphanumerics mapped
/// to `_`; gauges additionally expose `<name>_peak`, histograms map to
/// `_count`/`_sum` plus cumulative `_bucket{le="4^i"}` series ending
/// in `le="+Inf"`.
std::string prometheus_text(const MetricsSnapshot& snapshot);

/// Minimal blocking HTTP GET for tests, benchmarks and in-process
/// self-scrapes.  status == 0 signals a transport-level failure.
struct HttpResponse {
  int status = 0;
  std::string body;
};
HttpResponse http_get(const std::string& host, int port,
                      const std::string& target, int timeout_ms = 2000);

}  // namespace trustddl::obs
