// Structured Byzantine detection event log.
//
// Each robust-opening anomaly (commitment mismatch, share-copy
// authentication failure, missing message, distance anomaly, …)
// lands here as one record naming the observing party, the accused
// party, the protocol phase where the mismatch surfaced and the
// recovery path taken — the structured replacement for the ad-hoc
// TRUSTDDL_LOG(warn) strings (which remain for test compatibility).
//
// `mpc::DetectionLog::record` forwards into this global sink whenever
// metrics or tracing are enabled; `kind`/`phase`/`recovery` are string
// literals owned by the call sites, so records are cheap to copy.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace trustddl::obs {

struct DetectionEventRecord {
  int party = -1;    ///< observing (honest) party
  int suspect = -1;  ///< accused party, -1 when not attributable
  std::uint64_t step = 0;
  const char* kind = "";
  const char* phase = "";
  const char* recovery = "";
};

/// True when detection events should be captured (metrics or tracing
/// enabled).
bool events_enabled();

class EventLog {
 public:
  static EventLog& global();

  /// Appends (when enabled), bumps the `detect.<kind>` counter and
  /// mirrors the record onto the trace as an "event" line.
  void record(const DetectionEventRecord& event);

  std::vector<DetectionEventRecord> snapshot() const;
  std::size_t size() const;
  void clear();

  /// JSON array of event objects.
  static std::string to_json(const std::vector<DetectionEventRecord>& events);

 private:
  EventLog() = default;

  mutable std::mutex mu_;
  std::vector<DetectionEventRecord> events_;
};

}  // namespace trustddl::obs
