#include "obs/trace.hpp"

#include <unistd.h>

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace trustddl::obs {
namespace {

// A thread drains its buffer to the file once it grows past this; the
// value trades file-lock frequency against shutdown-drop exposure.
constexpr std::size_t kFlushThresholdBytes = 16 * 1024;

thread_local std::string tls_correlation;

void append_record(std::string& out, const char* kind, const char* name,
                   int party, std::uint64_t step, std::uint64_t ts_us,
                   std::uint64_t dur_us, const std::string& extra) {
  out += "{\"kind\": \"";
  out += kind;
  out += "\", \"name\": \"";
  out += name;
  out += "\", \"party\": ";
  out += std::to_string(party);
  out += ", \"step\": ";
  out += std::to_string(step);
  out += ", \"ts_us\": ";
  out += std::to_string(ts_us);
  out += ", \"dur_us\": ";
  out += std::to_string(dur_us);
  if (!extra.empty()) {
    out += ", ";
    out += extra;
  }
  out += "}\n";
}

// Appends `"corr": "<id>"` to `extra` when a correlation scope is
// active on this thread.
std::string with_correlation(const std::string& extra) {
  const std::string& corr = CorrelationScope::current();
  if (corr.empty()) {
    return extra;
  }
  std::string merged;
  merged.reserve(extra.size() + corr.size() + 16);
  if (!extra.empty()) {
    merged = extra;
    merged += ", ";
  }
  merged += "\"corr\": \"";
  merged += corr;
  merged += "\"";
  return merged;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::open(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  out_ = std::make_unique<std::ofstream>(path, std::ios::trunc);
  TRUSTDDL_REQUIRE(out_->good(), "cannot open trace file: " + path);
  buffers_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
  // First record anchors this file's steady timestamps to wall time so
  // merge_traces.py can align traces from different processes.
  std::string meta;
  std::string extra = "\"wall_epoch_us\": " + std::to_string(wall_epoch_us()) +
                      ", \"pid\": " + std::to_string(::getpid());
  // Fleet deployments stamp the pod name so merge_traces.py can
  // attribute each request timeline to the pod that served it.
  const std::string pod = HealthState::global().pod();
  if (!pod.empty()) {
    extra += ", \"pod\": \"" + pod + "\"";
  }
  append_record(meta, "meta", "process", -1, 0, now_us(), 0, extra);
  *out_ << meta;
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::close() {
  enabled_.store(false, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  if (!out_) {
    return;
  }
  for (const auto& buffer : buffers_) {
    std::string pending;
    {
      const std::lock_guard<std::mutex> buf_lock(buffer->mu);
      pending.swap(buffer->data);
    }
    *out_ << pending;
  }
  buffers_.clear();
  out_->flush();
  out_.reset();
}

std::shared_ptr<Tracer::ThreadBuffer> Tracer::buffer_for_current_thread() {
  struct TlsSlot {
    std::uint64_t epoch = 0;
    std::shared_ptr<ThreadBuffer> buffer;
  };
  thread_local TlsSlot slot;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (!slot.buffer || slot.epoch != epoch) {
    auto fresh = std::make_shared<ThreadBuffer>();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!out_) {
        return nullptr;
      }
      buffers_.push_back(fresh);
    }
    slot.buffer = std::move(fresh);
    slot.epoch = epoch;
  }
  return slot.buffer;
}

void Tracer::write_locked(const std::string& data) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (out_) {
    *out_ << data;
  }
}

void Tracer::emit(const char* kind, const char* name, int party,
                  std::uint64_t step, std::uint64_t ts_us,
                  std::uint64_t dur_us, const std::string& extra) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return;
  }
  const auto buffer = buffer_for_current_thread();
  if (!buffer) {
    return;
  }
  std::string record;
  record.reserve(128 + extra.size());
  append_record(record, kind, name, party, step, ts_us, dur_us, extra);
  std::string overflow;
  {
    const std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->data += record;
    if (buffer->data.size() >= kFlushThresholdBytes) {
      overflow.swap(buffer->data);
    }
  }
  // The file lock is taken only after releasing the buffer lock, so
  // emit never holds both at once (close() takes them in the opposite
  // order).
  if (!overflow.empty()) {
    write_locked(overflow);
  }
}

std::uint64_t now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

std::uint64_t wall_epoch_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

CorrelationScope::CorrelationScope(std::string id) {
  if (!tracing_enabled()) {
    return;
  }
  previous_ = std::move(tls_correlation);
  tls_correlation = std::move(id);
  active_ = true;
}

CorrelationScope::~CorrelationScope() {
  if (active_) {
    tls_correlation = std::move(previous_);
  }
}

const std::string& CorrelationScope::current() { return tls_correlation; }

ScopedSpan::ScopedSpan(const char* name, int party, std::uint64_t step)
    : name_(name), party_(party), step_(step) {
  active_ = tracing_enabled() || metrics_enabled();
  if (active_) {
    start_us_ = now_us();
  }
}

ScopedSpan::~ScopedSpan() {
  if (!active_) {
    return;
  }
  const std::uint64_t end_us = now_us();
  const std::uint64_t dur_us = end_us - start_us_;
  if (tracing_enabled()) {
    Tracer::global().emit("span", name_, party_, step_, start_us_, dur_us,
                          with_correlation(std::string()));
  }
  if (metrics_enabled()) {
    auto& registry = MetricsRegistry::global();
    const std::string base = std::string("span.") + name_;
    registry.counter(base + ".us").add(dur_us);
    registry.counter(base + ".count").add(1);
  }
}

void trace_instant(const char* name, int party, std::uint64_t step,
                   const std::string& extra) {
  if (tracing_enabled()) {
    Tracer::global().emit("instant", name, party, step, now_us(), 0,
                          with_correlation(extra));
  }
}

}  // namespace trustddl::obs
