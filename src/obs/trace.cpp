#include "obs/trace.hpp"

#include <chrono>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace trustddl::obs {

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::open(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  out_ = std::make_unique<std::ofstream>(path, std::ios::trunc);
  TRUSTDDL_REQUIRE(out_->good(), "cannot open trace file: " + path);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::close() {
  enabled_.store(false, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  if (out_) {
    out_->flush();
    out_.reset();
  }
}

void Tracer::emit(const char* kind, const char* name, int party,
                  std::uint64_t step, std::uint64_t ts_us,
                  std::uint64_t dur_us, const std::string& extra) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!out_) {
    return;
  }
  auto& out = *out_;
  out << "{\"kind\": \"" << kind << "\", \"name\": \"" << name
      << "\", \"party\": " << party << ", \"step\": " << step
      << ", \"ts_us\": " << ts_us << ", \"dur_us\": " << dur_us;
  if (!extra.empty()) {
    out << ", " << extra;
  }
  out << "}\n";
}

std::uint64_t now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

ScopedSpan::ScopedSpan(const char* name, int party, std::uint64_t step)
    : name_(name), party_(party), step_(step) {
  active_ = tracing_enabled() || metrics_enabled();
  if (active_) {
    start_us_ = now_us();
  }
}

ScopedSpan::~ScopedSpan() {
  if (!active_) {
    return;
  }
  const std::uint64_t end_us = now_us();
  const std::uint64_t dur_us = end_us - start_us_;
  if (tracing_enabled()) {
    Tracer::global().emit("span", name_, party_, step_, start_us_, dur_us);
  }
  if (metrics_enabled()) {
    auto& registry = MetricsRegistry::global();
    const std::string base = std::string("span.") + name_;
    registry.counter(base + ".us").add(dur_us);
    registry.counter(base + ".count").add(1);
  }
}

void trace_instant(const char* name, int party, std::uint64_t step,
                   const std::string& extra) {
  if (tracing_enabled()) {
    Tracer::global().emit("instant", name, party, step, now_us(), 0, extra);
  }
}

}  // namespace trustddl::obs
