#include "obs/metrics.hpp"

#include <cstdlib>
#include <sstream>

namespace trustddl::obs {
namespace detail {

namespace {

bool env_enabled() {
  const char* value = std::getenv("TRUSTDDL_METRICS");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

}  // namespace

std::atomic<bool> g_metrics_enabled{env_enabled()};

}  // namespace detail

void set_metrics_enabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t delta) {
  if (!metrics_enabled()) {
    return;
  }
  const std::int64_t now =
      value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  std::int64_t seen = peak_.load(std::memory_order_relaxed);
  while (now > seen &&
         !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
}

void Gauge::reset() {
  value_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_bound(std::size_t index) {
  return std::uint64_t{1} << (2 * index);
}

void Histogram::observe(std::uint64_t sample) {
  if (!metrics_enabled()) {
    return;
  }
  std::size_t index = 0;
  while (index + 1 < kBucketCount && sample > bucket_bound(index)) {
    ++index;
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::counter_sum(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& [name, value] : counters) {
    if (name.rfind(prefix, 0) == 0) {
      total += value;
    }
  }
  return total;
}

namespace {

void append_json_string(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(ch >> 4) & 0xf]
              << "0123456789abcdef"[ch & 0xf];
        } else {
          out << ch;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      out << ", ";
    }
    first = false;
    append_json_string(out, name);
    out << ": " << value;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& gauge : gauges) {
    if (!first) {
      out << ", ";
    }
    first = false;
    append_json_string(out, gauge.name);
    out << ": {\"value\": " << gauge.value << ", \"peak\": " << gauge.peak
        << "}";
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& histogram : histograms) {
    if (!first) {
      out << ", ";
    }
    first = false;
    append_json_string(out, histogram.name);
    out << ": {\"count\": " << histogram.count
        << ", \"sum\": " << histogram.sum << ", \"bounds\": [";
    for (std::size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
      if (i != 0) {
        out << ", ";
      }
      out << Histogram::bucket_bound(i);
    }
    out << "], \"buckets\": [";
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (i != 0) {
        out << ", ";
      }
      out << histogram.buckets[i];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value(), gauge->peak()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.count = histogram->count();
    data.sum = histogram->sum();
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      data.buckets[i] = histogram->bucket(i);
    }
    snapshot.histograms.push_back(std::move(data));
  }
  return snapshot;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->reset();
  }
}

void count(const std::string& name, std::uint64_t delta) {
  if (metrics_enabled()) {
    MetricsRegistry::global().counter(name).add(delta);
  }
}

void gauge_add(const std::string& name, std::int64_t delta) {
  if (metrics_enabled()) {
    MetricsRegistry::global().gauge(name).add(delta);
  }
}

void observe(const std::string& name, std::uint64_t sample) {
  if (metrics_enabled()) {
    MetricsRegistry::global().histogram(name).observe(sample);
  }
}

}  // namespace trustddl::obs
