#include "fleet/topology.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace trustddl::fleet {
namespace {

// Cursor over the JSON text.  Only the shapes the topology schema
// needs are implemented: objects, arrays, double-quoted strings
// without escapes, and (signed) integers.  Anything else is a parse
// error with a byte offset so a typo in a hand-edited file is easy to
// find.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_if(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        fail("string escapes are not supported in topology files");
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
    }
    std::string out = text_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    return out;
  }

  long long parse_int() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected an integer");
    }
    return std::stoll(text_.substr(start, pos_ - start));
  }

  void skip_value();

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  [[noreturn]] void fail(const std::string& why) const {
    std::ostringstream oss;
    oss << "fleet topology: " << why << " at byte " << pos_;
    throw InvalidArgument(oss.str());
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

// Skips any supported value (used for unknown keys so topology files
// can grow fields without breaking older binaries).
void JsonCursor::skip_value() {
  const char c = peek();
  if (c == '"') {
    parse_string();
  } else if (c == '{') {
    expect('{');
    if (!consume_if('}')) {
      do {
        parse_string();
        expect(':');
        skip_value();
      } while (consume_if(','));
      expect('}');
    }
  } else if (c == '[') {
    expect('[');
    if (!consume_if(']')) {
      do {
        skip_value();
      } while (consume_if(','));
      expect(']');
    }
  } else if (c == 't' || c == 'f' || c == 'n') {
    // true / false / null
    while (!at_end() && std::isalpha(static_cast<unsigned char>(peek())) != 0) {
      expect(peek());
    }
  } else {
    parse_int();
  }
}

PodSpec parse_pod(JsonCursor& cur) {
  PodSpec pod;
  cur.expect('{');
  if (!cur.consume_if('}')) {
    do {
      const std::string key = cur.parse_string();
      cur.expect(':');
      if (key == "name") {
        pod.name = cur.parse_string();
      } else if (key == "host") {
        pod.host = cur.parse_string();
      } else if (key == "port_base") {
        pod.port_base = static_cast<int>(cur.parse_int());
      } else if (key == "admin_ports") {
        cur.expect('[');
        if (!cur.consume_if(']')) {
          do {
            pod.admin_ports.push_back(static_cast<int>(cur.parse_int()));
          } while (cur.consume_if(','));
          cur.expect(']');
        }
      } else {
        cur.skip_value();
      }
    } while (cur.consume_if(','));
    cur.expect('}');
  }
  TRUSTDDL_REQUIRE(!pod.name.empty(), "fleet topology: pod missing \"name\"");
  TRUSTDDL_REQUIRE(pod.port_base > 0,
                   "fleet topology: pod \"" + pod.name +
                       "\" missing a positive \"port_base\"");
  return pod;
}

}  // namespace

std::string PodSpec::address_of(int actor) const {
  TRUSTDDL_REQUIRE(actor >= 0, "address_of: negative actor id");
  std::ostringstream oss;
  oss << host << ":" << (port_base + actor);
  return oss.str();
}

std::size_t FleetTopology::pod_index(const std::string& name) const {
  for (std::size_t i = 0; i < pods.size(); ++i) {
    if (pods[i].name == name) {
      return i;
    }
  }
  throw InvalidArgument("fleet topology: no pod named \"" + name + "\"");
}

std::vector<std::string> FleetTopology::pod_names() const {
  std::vector<std::string> names;
  names.reserve(pods.size());
  for (const auto& pod : pods) {
    names.push_back(pod.name);
  }
  return names;
}

std::string FleetTopology::to_json() const {
  std::ostringstream oss;
  oss << "{\"schema\": \"trustddl.fleet.v1\", \"clients\": " << clients
      << ", \"pods\": [";
  for (std::size_t i = 0; i < pods.size(); ++i) {
    const auto& pod = pods[i];
    if (i != 0) {
      oss << ", ";
    }
    oss << "{\"name\": \"" << pod.name << "\", \"host\": \"" << pod.host
        << "\", \"port_base\": " << pod.port_base << ", \"admin_ports\": [";
    for (std::size_t j = 0; j < pod.admin_ports.size(); ++j) {
      if (j != 0) {
        oss << ", ";
      }
      oss << pod.admin_ports[j];
    }
    oss << "]}";
  }
  oss << "]}";
  return oss.str();
}

FleetTopology parse_topology(const std::string& json_text) {
  FleetTopology topo;
  JsonCursor cur(json_text);
  cur.expect('{');
  if (!cur.consume_if('}')) {
    do {
      const std::string key = cur.parse_string();
      cur.expect(':');
      if (key == "pods") {
        cur.expect('[');
        if (!cur.consume_if(']')) {
          do {
            topo.pods.push_back(parse_pod(cur));
          } while (cur.consume_if(','));
          cur.expect(']');
        }
      } else if (key == "clients") {
        topo.clients = static_cast<int>(cur.parse_int());
      } else {
        cur.skip_value();
      }
    } while (cur.consume_if(','));
    cur.expect('}');
  }
  TRUSTDDL_REQUIRE(cur.at_end(),
                   "fleet topology: trailing garbage after document");
  TRUSTDDL_REQUIRE(!topo.pods.empty(),
                   "fleet topology: \"pods\" must list at least one pod");
  TRUSTDDL_REQUIRE(topo.clients >= 0,
                   "fleet topology: \"clients\" must be non-negative");
  for (std::size_t i = 0; i < topo.pods.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.pods.size(); ++j) {
      TRUSTDDL_REQUIRE(topo.pods[i].name != topo.pods[j].name,
                       "fleet topology: duplicate pod name \"" +
                           topo.pods[i].name + "\"");
    }
  }
  return topo;
}

FleetTopology load_topology(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TRUSTDDL_REQUIRE(in.good(),
                   "fleet topology: cannot open \"" + path + "\"");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_topology(buf.str());
}

}  // namespace trustddl::fleet
