// In-process fleet session: N complete serving pods (each an
// owner-sequencer plus three parties over its own in-memory Network)
// and K routed FleetClients, all on threads.  The fleet analogue of
// serve::run_serving_session — bench_fleet and the chaos tests drive
// multi-pod routing, failover, and pod-crash recovery without
// sockets, with the same seed derivations as the TCP CLIs.
//
// Every pod builds its model from the same engine seed, so any pod
// answers any request with identical labels — which is exactly the
// property that makes client-side failover label-exact.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "fleet/client.hpp"
#include "serve/server.hpp"

namespace trustddl::fleet {

struct FleetSessionConfig {
  nn::ModelSpec spec;
  core::EngineConfig engine;
  serve::ServeConfig serve;
  /// Per-client options template; each client derives its sharing seed
  /// from `client.seed` and its index exactly like the serve harness.
  serve::ClientOptions client;
  RouterOptions router;
  int num_pods = 2;
  int num_clients = 2;
  /// Pod names feed the rendezvous hash; empty = "pod0", "pod1", ...
  std::vector<std::string> pod_names;
  /// Bound on pod attempts per request (0 = FleetClient default).
  int max_pod_attempts = 0;
  /// Chaos: this pod's owner AND all three parties stop (no shutdown
  /// handshake) after the pod dispatched `crash_pod_after_batches`
  /// batches — the in-process stand-in for SIGKILLing a pod.
  int crash_pod = -1;
  std::size_t crash_pod_after_batches = 0;
};

struct FleetSessionResult {
  std::vector<serve::SchedulerStats> scheduler;  // per pod
  std::vector<std::array<std::size_t, core::kComputingParties>>
      party_batches;                             // per pod
  /// Requests answered per pod, summed over clients.
  std::vector<std::size_t> served_by_pod;
  std::size_t failovers = 0;
  double wall_seconds = 0.0;
};

/// `client_body(index, client)` runs on client `index`'s thread; the
/// harness broadcasts the stop notices after it returns.  Throws the
/// first actor failure after joining every thread (pod actors crashed
/// on purpose via `crash_pod` do not count as failures).
FleetSessionResult run_fleet_session(
    const FleetSessionConfig& config,
    const std::function<void(int, FleetClient&)>& client_body);

}  // namespace trustddl::fleet
