#include "fleet/harness.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/stopwatch.hpp"
#include "net/network.hpp"
#include "serve/wire.hpp"

namespace trustddl::fleet {
namespace {

/// In-memory pod attachment: the endpoint handle is all there is to
/// keep alive, so the session just wraps the InferenceClient.
class MemoryPodSession final : public PodSession {
 public:
  MemoryPodSession(net::Endpoint endpoint, serve::ClientOptions options)
      : client_(endpoint, options) {}
  serve::InferenceClient& client() override { return client_; }

 private:
  serve::InferenceClient client_;
};

}  // namespace

FleetSessionResult run_fleet_session(
    const FleetSessionConfig& config,
    const std::function<void(int, FleetClient&)>& client_body) {
  TRUSTDDL_REQUIRE(config.num_pods >= 1, "fleet: need at least one pod");
  TRUSTDDL_REQUIRE(config.num_clients >= 1,
                   "fleet: session needs at least one client");
  TRUSTDDL_REQUIRE(config.pod_names.empty() ||
                       config.pod_names.size() ==
                           static_cast<std::size_t>(config.num_pods),
                   "fleet: pod_names must match num_pods");
  kernels::set_global_config(config.engine.kernels);

  const auto pods = static_cast<std::size_t>(config.num_pods);
  std::vector<std::string> pod_names = config.pod_names;
  if (pod_names.empty()) {
    for (std::size_t p = 0; p < pods; ++p) {
      pod_names.push_back("pod" + std::to_string(p));
    }
  }

  net::NetworkConfig net_config;
  net_config.num_parties = core::kNumActors + config.num_clients;
  net_config.recv_timeout = config.engine.recv_timeout;
  net_config.emulate_latency = config.engine.emulate_latency;
  net_config.link_latency = config.engine.link_latency;
  std::vector<std::unique_ptr<net::Network>> networks;
  networks.reserve(pods);
  for (std::size_t p = 0; p < pods; ++p) {
    networks.push_back(std::make_unique<net::Network>(net_config));
  }

  // Every pod builds the identical model from the shared engine seed —
  // the fleet invariant that makes failover label-exact.
  std::vector<nn::Sequential> models;
  models.reserve(pods);
  std::size_t param_count = 0;
  for (std::size_t p = 0; p < pods; ++p) {
    Rng model_rng(config.engine.seed);
    models.push_back(nn::build_model(config.spec, model_rng));
    param_count = models.back().parameters().size();
  }

  FleetSessionResult result;
  result.scheduler.resize(pods);
  result.party_batches.resize(pods);
  result.served_by_pod.assign(pods, 0);

  std::vector<std::function<void()>> bodies;
  // Actors of the crash pod are sacrificial: cutting a pod's owner off
  // mid-batch strands its parties exactly like SIGKILL would, so their
  // timeouts are the simulated crash, not session failures.
  std::vector<bool> sacrificial;
  for (std::size_t p = 0; p < pods; ++p) {
    const bool crashing = static_cast<int>(p) == config.crash_pod;
    sacrificial.insert(sacrificial.end(),
                       1 + static_cast<std::size_t>(core::kComputingParties),
                       crashing);
    bodies.emplace_back([&, p, crashing] {
      serve::ServeConfig serve_config = config.serve;
      if (crashing) {
        serve_config.max_batches = config.crash_pod_after_batches;
      }
      serve::serve_model_owner_body(
          config.spec, config.engine, models[p],
          networks[p]->endpoint(core::kModelOwner), serve_config,
          config.num_clients, &result.scheduler[p]);
    });
    for (int party = 0; party < core::kComputingParties; ++party) {
      bodies.emplace_back([&, p, party, crashing] {
        serve::ServerOptions options;
        options.serve = config.serve;
        if (crashing) {
          options.max_batches = config.crash_pod_after_batches;
          // A party stranded mid-batch by its killed owner is part of
          // the simulated crash — let it bleed out fast, not after the
          // generous multi-process dealer slack.
          options.owner_link_timeout = std::chrono::milliseconds(1500);
        }
        serve::serve_computing_party_body(
            config.spec, config.engine, param_count, party,
            networks[p]->endpoint(party), options,
            &result.party_batches[p][static_cast<std::size_t>(party)]);
      });
    }
  }

  std::vector<std::size_t> served_acc(pods, 0);
  std::size_t failovers_acc = 0;
  std::mutex acc_mu;
  for (int index = 0; index < config.num_clients; ++index) {
    sacrificial.push_back(false);
    bodies.emplace_back([&, index] {
      serve::ClientOptions options = config.client;
      options.frac_bits = config.engine.frac_bits;
      options.dist_tolerance = config.engine.dist_tolerance;
      options.seed = config.client.seed * 1000003 +
                     17 * static_cast<std::uint64_t>(index + 1);
      const net::PartyId client_id = serve::kFirstClientId + index;
      FleetClientOptions fleet_options;
      fleet_options.client = options;
      fleet_options.router = config.router;
      fleet_options.max_pod_attempts = config.max_pod_attempts;
      FleetClient client(
          client_id, pod_names,
          [&, options](std::size_t pod, bool for_stop) {
            (void)for_stop;  // in-memory attach cannot block
            return std::make_unique<MemoryPodSession>(
                networks[pod]->endpoint(client_id), options);
          },
          fleet_options);
      client_body(index, client);
      client.stop();
      const auto served = client.served_by_pod();
      const std::lock_guard<std::mutex> lock(acc_mu);
      for (std::size_t p = 0; p < pods; ++p) {
        served_acc[p] += served[p];
      }
      failovers_acc += client.total_failovers();
    });
  }

  Stopwatch stopwatch;
  std::vector<std::exception_ptr> errors(bodies.size());
  std::vector<std::thread> threads;
  threads.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        bodies[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  result.wall_seconds = stopwatch.elapsed_seconds();
  result.served_by_pod = served_acc;
  result.failovers = failovers_acc;

  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (errors[i] && !sacrificial[i]) {
      std::rethrow_exception(errors[i]);
    }
  }
  return result;
}

}  // namespace trustddl::fleet
