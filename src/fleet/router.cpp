#include "fleet/router.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace trustddl::fleet {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

PodRouter::PodRouter(std::vector<std::string> pod_names, RouterOptions options)
    : names_(std::move(pod_names)), options_(options) {
  TRUSTDDL_REQUIRE(!names_.empty(), "PodRouter: need at least one pod");
  health_.resize(names_.size());
}

std::vector<std::size_t> PodRouter::preference_order(
    std::uint64_t client_key) const {
  std::vector<std::pair<std::uint64_t, std::size_t>> scored;
  scored.reserve(names_.size());
  const std::uint64_t key_hash = splitmix64(client_key);
  for (std::size_t p = 0; p < names_.size(); ++p) {
    scored.emplace_back(splitmix64(fnv1a(names_[p]) ^ key_hash), p);
  }
  // Descending score; index breaks the (astronomically unlikely) tie
  // so the order is total and identical on every client.
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) {
                return a.first > b.first;
              }
              return a.second < b.second;
            });
  std::vector<std::size_t> order;
  order.reserve(scored.size());
  for (const auto& [score, pod] : scored) {
    (void)score;
    order.push_back(pod);
  }
  return order;
}

std::size_t PodRouter::home_pod(std::uint64_t client_key) const {
  return preference_order(client_key).front();
}

std::size_t PodRouter::route(std::uint64_t client_key) const {
  const auto order = preference_order(client_key);
  for (const std::size_t pod : order) {
    if (eligible(pod)) {
      return pod;
    }
  }
  return order.front();
}

void PodRouter::mark_down(std::size_t pod) {
  TRUSTDDL_REQUIRE(pod < names_.size(), "mark_down: pod out of range");
  const std::lock_guard<std::mutex> lock(mu_);
  if (!health_[pod].down) {
    health_[pod].down = true;
  }
  // Restart the cooldown on every failure so a flapping pod is not
  // hammered at the cooldown period's edge.
  health_[pod].down_since = std::chrono::steady_clock::now();
}

void PodRouter::mark_up(std::size_t pod) {
  TRUSTDDL_REQUIRE(pod < names_.size(), "mark_up: pod out of range");
  const std::lock_guard<std::mutex> lock(mu_);
  health_[pod].down = false;
}

bool PodRouter::eligible(std::size_t pod) const {
  TRUSTDDL_REQUIRE(pod < names_.size(), "eligible: pod out of range");
  const std::lock_guard<std::mutex> lock(mu_);
  if (!health_[pod].down) {
    return true;
  }
  return std::chrono::steady_clock::now() - health_[pod].down_since >=
         options_.retry_cooldown;
}

bool PodRouter::is_down(std::size_t pod) const {
  TRUSTDDL_REQUIRE(pod < names_.size(), "is_down: pod out of range");
  const std::lock_guard<std::mutex> lock(mu_);
  return health_[pod].down;
}

}  // namespace trustddl::fleet
