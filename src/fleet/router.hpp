// Stateless client-side pod router with health-aware failover.
//
// Routing uses rendezvous (highest-random-weight) hashing: for a
// client key k, every pod p gets the score
//
//   score(p, k) = splitmix64(fnv1a(pod_name(p)) ^ splitmix64(k))
//
// and the pod order sorted by descending score is the client's
// *preference order*.  The first pod is its home; the rest form the
// failover ring.  Rendezvous hashing gives the two properties the
// fleet needs with no coordination: every client computes the same
// assignment from the topology file alone, and removing a pod only
// moves the clients that were homed on it (each falls through to its
// own next preference, spreading the orphaned load across the
// survivors instead of dogpiling one neighbour).
//
// Health is purely local observation: mark_down(pod) after a connect
// failure, probe failure, or response timeout; a down pod is skipped
// by route() until `retry_cooldown` elapses, after which it becomes
// eligible again (one client re-trying it acts as the probe).  All
// methods are thread-safe — one router is shared by a client's
// submitter threads.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace trustddl::fleet {

struct RouterOptions {
  /// How long a pod marked down is skipped before a client is allowed
  /// to try it again.
  std::chrono::milliseconds retry_cooldown{2000};
};

class PodRouter {
 public:
  PodRouter(std::vector<std::string> pod_names, RouterOptions options = {});

  std::size_t num_pods() const { return names_.size(); }
  const std::string& pod_name(std::size_t pod) const { return names_[pod]; }

  /// Pods sorted by descending rendezvous score for `client_key`
  /// (deterministic; ignores health).
  std::vector<std::size_t> preference_order(std::uint64_t client_key) const;

  /// The client's home pod: preference_order(...)[0].
  std::size_t home_pod(std::uint64_t client_key) const;

  /// First pod in the client's preference order that is currently
  /// considered up (or down long enough that the cooldown expired).
  /// Falls back to the home pod when every pod looks down, so a
  /// fully-degraded view still yields a deterministic probe target.
  std::size_t route(std::uint64_t client_key) const;

  /// Health observations from this client's own traffic.
  void mark_down(std::size_t pod);
  void mark_up(std::size_t pod);

  /// True when the pod is up, or down but past the retry cooldown.
  bool eligible(std::size_t pod) const;
  bool is_down(std::size_t pod) const;

 private:
  std::vector<std::string> names_;
  RouterOptions options_;
  mutable std::mutex mu_;
  struct PodHealth {
    bool down = false;
    std::chrono::steady_clock::time_point down_since{};
  };
  std::vector<PodHealth> health_;
};

/// splitmix64 finalizer — the hash behind rendezvous scores.
std::uint64_t splitmix64(std::uint64_t x);

/// FNV-1a over a string, the pod-name half of the rendezvous score.
std::uint64_t fnv1a(const std::string& text);

}  // namespace trustddl::fleet
