// Fleet topology: the shared map from pod name to actor endpoints.
//
// A fleet is N independent 3-party pods (parties 0..2, data owner 3,
// model owner 4) that all load the same model seed.  Every CLI in a
// deployment — parties, owners, routed clients, and the Python
// observability scripts — reads the same small JSON file so there is
// exactly one place where the wiring lives:
//
//   {
//     "schema": "trustddl.fleet.v1",
//     "clients": 4,
//     "pods": [
//       {"name": "pod0", "host": "127.0.0.1", "port_base": 29500,
//        "admin_ports": [28700, 28701, 28702]},
//       {"name": "pod1", "host": "127.0.0.1", "port_base": 29520,
//        "admin_ports": [28710, 28711, 28712]}
//     ]
//   }
//
// Actor `i` of a pod listens on host:port_base+i (the same shorthand
// as `trustddl_party --port-base`); client slots above kNumActors are
// ephemeral and never dialed.  `admin_ports` lists the pod's admin
// endpoints; by convention the first entry is the process hosting the
// owner-sequencer, which is what routed clients probe for pod health.
// The parser is a dependency-free JSON subset (objects, arrays,
// strings, integers) — the Python scripts use stdlib json on the same
// file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace trustddl::fleet {

struct PodSpec {
  std::string name;
  std::string host = "127.0.0.1";
  int port_base = 0;
  std::vector<int> admin_ports;

  /// "host:port_base+actor" — the dial address for actor `actor`.
  std::string address_of(int actor) const;
};

struct FleetTopology {
  std::vector<PodSpec> pods;
  /// Expected number of serve clients (sizes every pod's actor space);
  /// 0 means "not specified in the file".
  int clients = 0;

  /// Index of the pod named `name`; throws InvalidArgument if absent.
  std::size_t pod_index(const std::string& name) const;

  /// Pod names in file order (the router hashes these).
  std::vector<std::string> pod_names() const;

  /// Serialized back to the canonical JSON form (tests, debugging).
  std::string to_json() const;
};

/// Parses the JSON topology text; throws InvalidArgument on malformed
/// input, duplicate pod names, or missing required fields.
FleetTopology parse_topology(const std::string& json_text);

/// Reads and parses a topology file; throws InvalidArgument on I/O error.
FleetTopology load_topology(const std::string& path);

}  // namespace trustddl::fleet
