#include "fleet/client.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace trustddl::fleet {

FleetClient::FleetClient(std::uint64_t client_key,
                         std::vector<std::string> pod_names,
                         PodConnector connector, FleetClientOptions options,
                         PodProbe probe)
    : client_key_(client_key),
      router_(std::move(pod_names), options.router),
      connector_(std::move(connector)),
      options_(options),
      probe_(std::move(probe)) {
  TRUSTDDL_REQUIRE(connector_ != nullptr, "FleetClient: connector required");
  slots_.reserve(router_.num_pods());
  for (std::size_t p = 0; p < router_.num_pods(); ++p) {
    slots_.push_back(std::make_unique<PodSlot>());
  }
  served_by_pod_.assign(router_.num_pods(), 0);
}

std::shared_ptr<PodSession> FleetClient::ensure_session(std::size_t pod,
                                                        bool for_stop) {
  PodSlot& slot = *slots_[pod];
  const std::lock_guard<std::mutex> lock(slot.mu);
  if (!slot.session) {
    slot.session = connector_(pod, for_stop);  // may throw
  }
  return slot.session;
}

void FleetClient::drop_session(std::size_t pod,
                               const std::shared_ptr<PodSession>& sess) {
  PodSlot& slot = *slots_[pod];
  const std::lock_guard<std::mutex> lock(slot.mu);
  // Only clear the slot if it still holds the session we failed on —
  // another thread may already have reconnected.
  if (slot.session == sess) {
    slot.session.reset();
  }
}

bool FleetClient::try_pod(std::size_t pod, const RealTensor& images,
                          FleetResult& out) {
  if (probe_ && !probe_(pod)) {
    obs::count("fleet.probe.unhealthy");
    router_.mark_down(pod);
    return false;
  }
  std::shared_ptr<PodSession> session;
  try {
    session = ensure_session(pod, /*for_stop=*/false);
  } catch (const Error& e) {
    obs::count("fleet.connect.failures");
    TRUSTDDL_LOG_DEBUG("fleet") << "client " << client_key_
                                << ": connect to pod "
                                << router_.pod_name(pod)
                                << " failed: " << e.what();
    router_.mark_down(pod);
    return false;
  }
  serve::InferenceResult result;
  try {
    result = session->client().infer(images);
  } catch (const Error& e) {
    // A SIGKILLed pod surfaces as a dead socket (ProtocolError) or a
    // recv timeout; either way the session is suspect — drop it so
    // the next attempt reconnects fresh.
    obs::count("fleet.request.errors");
    TRUSTDDL_LOG_DEBUG("fleet") << "client " << client_key_
                                << ": request on pod "
                                << router_.pod_name(pod)
                                << " failed: " << e.what();
    drop_session(pod, session);
    router_.mark_down(pod);
    return false;
  }
  out.result = std::move(result);
  out.pod = pod;
  if (out.result.status == serve::Status::kOk) {
    router_.mark_up(pod);
    return true;
  }
  // Rejected after the per-pod retry budget, or a deadline miss: the
  // pod is alive but not serving this client in time — fail over, but
  // keep the (healthy) connection for the stop broadcast.
  router_.mark_down(pod);
  return false;
}

FleetResult FleetClient::infer(const RealTensor& images) {
  const auto order = router_.preference_order(client_key_);
  const int max_attempts =
      options_.max_pod_attempts > 0
          ? options_.max_pod_attempts
          : 2 * static_cast<int>(router_.num_pods());
  FleetResult out;
  obs::count("fleet.requests");
  int attempts = 0;
  while (attempts < max_attempts) {
    bool tried_any = false;
    for (const std::size_t pod : order) {
      if (attempts >= max_attempts) {
        break;
      }
      if (!router_.eligible(pod)) {
        continue;
      }
      tried_any = true;
      ++attempts;
      if (try_pod(pod, images, out)) {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++served_by_pod_[pod];
        failovers_ += static_cast<std::size_t>(out.failovers);
        return out;
      }
      obs::count("fleet.failovers");
      ++out.failovers;
    }
    if (!tried_any) {
      // Every pod is inside its down-cooldown: force one probe of the
      // home pod rather than spinning.
      ++attempts;
      if (try_pod(order.front(), images, out)) {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++served_by_pod_[order.front()];
        failovers_ += static_cast<std::size_t>(out.failovers);
        return out;
      }
      obs::count("fleet.failovers");
      ++out.failovers;
    }
  }
  // Fleet-wide failure; report the last attempt's (non-OK) result.
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    failovers_ += static_cast<std::size_t>(out.failovers);
  }
  return out;
}

void FleetClient::stop() {
  for (std::size_t pod = 0; pod < router_.num_pods(); ++pod) {
    try {
      const auto session = ensure_session(pod, /*for_stop=*/true);
      session->client().stop();
      obs::count("fleet.stops.sent");
    } catch (const Error& e) {
      // Dead pod — its scheduler is gone, nothing waits for our stop.
      obs::count("fleet.stops.failed");
      TRUSTDDL_LOG_DEBUG("fleet") << "client " << client_key_
                                  << ": stop to pod "
                                  << router_.pod_name(pod)
                                  << " failed: " << e.what();
    }
  }
}

std::vector<std::size_t> FleetClient::served_by_pod() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return served_by_pod_;
}

std::size_t FleetClient::total_failovers() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return failovers_;
}

}  // namespace trustddl::fleet
