// Routed serving client: one logical client over N pods.
//
// FleetClient wraps one InferenceClient per pod behind a PodRouter.
// A request goes to the client's home pod (rendezvous hash of its
// client key); if that pod's owner is stale, the connect fails, or
// the request times out / keeps getting rejected, the client marks
// the pod down and *resubmits the same rows to the next pod in its
// preference order under a fresh seq id*.  Because every pod loads
// the same model seed, a resubmitted request reconstructs exactly the
// labels the home pod would have produced — failover is label-exact.
//
// Pod attachment is lazy and pluggable via PodConnector: the TCP CLI
// dials a fresh ephemeral-port transport per pod on first use, the
// in-memory fleet harness hands out endpoints on its per-pod
// Networks.  stop() broadcasts the client's stop notice to every pod
// (connecting if it never talked to one), because each pod's
// owner-sequencer counts stops from all expected clients before
// shutting down.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fleet/router.hpp"
#include "numeric/tensor.hpp"
#include "serve/client.hpp"

namespace trustddl::fleet {

/// One live attachment to a pod.  Implementations own whatever keeps
/// the InferenceClient's endpoint alive (a TcpTransport for real
/// deployments, nothing extra in-memory); destruction tears it down.
class PodSession {
 public:
  virtual ~PodSession() = default;
  virtual serve::InferenceClient& client() = 0;
};

/// Connects this client to `pod`; throws on failure.  `for_stop` is
/// true for the shutdown broadcast, where implementations should use
/// a short connect timeout (the pod may be dead).
using PodConnector =
    std::function<std::unique_ptr<PodSession>(std::size_t pod, bool for_stop)>;

/// Optional out-of-band liveness probe (admin /healthz for TCP
/// fleets); returning false skips the pod before any shares move.
using PodProbe = std::function<bool(std::size_t pod)>;

struct FleetClientOptions {
  serve::ClientOptions client;
  RouterOptions router;
  /// Bound on pod attempts per request (0 = 2 * num_pods).
  int max_pod_attempts = 0;
};

struct FleetResult {
  serve::InferenceResult result;
  /// Pod that produced (or last attempted) the result.
  std::size_t pod = 0;
  /// Pods abandoned before this result landed.
  int failovers = 0;
};

class FleetClient {
 public:
  /// `client_key` feeds the rendezvous hash — use the client's actor
  /// id so every component derives the same assignment.
  FleetClient(std::uint64_t client_key, std::vector<std::string> pod_names,
              PodConnector connector, FleetClientOptions options = {},
              PodProbe probe = {});

  /// Routed submit+await with failover.  Never throws on pod failure;
  /// a fleet-wide outage surfaces as Status::kDeadlineMissed.
  FleetResult infer(const RealTensor& images);

  /// Broadcasts this client's stop notice to every pod (best effort
  /// for pods that are down).
  void stop();

  std::size_t home_pod() const { return router_.home_pod(client_key_); }
  const PodRouter& router() const { return router_; }
  std::size_t num_pods() const { return router_.num_pods(); }

  /// Requests served per pod and failovers, for reporting.
  std::vector<std::size_t> served_by_pod() const;
  std::size_t total_failovers() const;

 private:
  /// Session for `pod`, connecting lazily; shared_ptr so a concurrent
  /// drop (failover on another thread) cannot free it mid-request.
  std::shared_ptr<PodSession> ensure_session(std::size_t pod, bool for_stop);
  void drop_session(std::size_t pod, const std::shared_ptr<PodSession>& sess);

  /// One attempt against one pod; returns true when `out` holds a
  /// terminal kOk result.
  bool try_pod(std::size_t pod, const RealTensor& images, FleetResult& out);

  std::uint64_t client_key_;
  PodRouter router_;
  PodConnector connector_;
  FleetClientOptions options_;
  PodProbe probe_;

  struct PodSlot {
    std::mutex mu;
    std::shared_ptr<PodSession> session;
  };
  std::vector<std::unique_ptr<PodSlot>> slots_;

  mutable std::mutex stats_mu_;
  std::vector<std::size_t> served_by_pod_;
  std::size_t failovers_ = 0;
};

}  // namespace trustddl::fleet
