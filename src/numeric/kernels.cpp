#include "numeric/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "numeric/simd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace trustddl::kernels {
namespace {

// Pool instrumentation.  Function-local statics cache the registry
// references so the enabled path costs one relaxed RMW and the
// disabled path one relaxed load (inside Counter::add / the explicit
// metrics_enabled() gates around clock reads).
obs::Counter& jobs_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("kernels.jobs");
  return counter;
}
obs::Counter& inline_runs_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("kernels.inline_runs");
  return counter;
}
obs::Counter& caller_chunks_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("kernels.chunks.caller");
  return counter;
}
obs::Counter& worker_chunks_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("kernels.chunks.worker");
  return counter;
}
obs::Histogram& caller_wait_histogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram("kernels.caller_wait_us");
  return histogram;
}
obs::Histogram& worker_idle_histogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram("kernels.worker_idle_us");
  return histogram;
}

/// True on pool worker threads: nested parallel sections run inline
/// there, which both avoids deadlock (a worker never blocks waiting on
/// work only it could execute) and keeps the outermost partition the
/// only one that matters for scheduling.
thread_local bool t_in_pool_worker = false;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw) {
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

std::size_t sysconf_bytes(int name) {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  const long value = ::sysconf(name);
  return value > 0 ? static_cast<std::size_t>(value) : 0;
#else
  (void)name;
  return 0;
#endif
}

std::size_t l1d_cache_bytes() {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  static const std::size_t bytes = sysconf_bytes(_SC_LEVEL1_DCACHE_SIZE);
#else
  static const std::size_t bytes = 0;
#endif
  return bytes;
}

std::size_t l2_cache_bytes() {
#if defined(_SC_LEVEL2_CACHE_SIZE)
  static const std::size_t bytes = sysconf_bytes(_SC_LEVEL2_CACHE_SIZE);
#else
  static const std::size_t bytes = 0;
#endif
  return bytes;
}

std::size_t pow2_floor(std::size_t value) {
  std::size_t result = 1;
  while (result * 2 <= value) {
    result *= 2;
  }
  return result;
}

/// Inner matmul kernel: c[j] += a * b[j].  Routed through the SIMD
/// layer for the two instantiated element types; the backend is
/// bit-identical to this scalar loop (exact ring arithmetic; no-FMA
/// doubles — see numeric/simd.hpp).
template <typename T>
inline void axpy_row(T* c, T a, const T* b, std::size_t n) {
  if constexpr (std::is_same_v<T, std::uint64_t>) {
    simd::ring_axpy(c, a, b, n);
  } else if constexpr (std::is_same_v<T, double>) {
    simd::real_axpy(c, a, b, n);
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      c[j] += a * b[j];
    }
  }
}

/// Elementwise product row: c[j] = a[j] * b[j].
template <typename T>
inline void mul_row(T* c, const T* a, const T* b, std::size_t n) {
  if constexpr (std::is_same_v<T, std::uint64_t>) {
    simd::ring_mul(c, a, b, n);
  } else if constexpr (std::is_same_v<T, double>) {
    simd::real_mul(c, a, b, n);
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      c[j] = a[j] * b[j];
    }
  }
}

/// A multi-chunk job: workers and the submitting caller claim chunk
/// indices from `next` until exhausted; `done` (guarded by `mutex`)
/// tracks completion for the caller's wait.
struct Job {
  std::function<void(std::size_t)> run_chunk;
  std::size_t total = 0;
  std::atomic<std::size_t> next{0};

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;
  std::exception_ptr error;

  void execute(std::size_t chunk) {
    std::exception_ptr failure;
    try {
      run_chunk(chunk);
    } catch (...) {
      failure = std::current_exception();
    }
    // On failure, cancel the chunks nobody has claimed yet: exchange
    // returns the claim counter at cancellation time, so chunks
    // [prev, total) will never run and must be accounted as done or
    // the submitter would wait forever.  Claims issued before the
    // exchange all execute (and count themselves); claims after it
    // see >= total and are no-ops.
    std::size_t cancelled = 0;
    if (failure) {
      const std::size_t prev = next.exchange(total, std::memory_order_relaxed);
      if (prev < total) {
        cancelled = total - prev;
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    if (failure && !error) {
      error = failure;
    }
    done += 1 + cancelled;
    if (done >= total) {
      done_cv.notify_all();
    }
  }
};

/// Persistent process-wide pool.  Workers are started lazily, up to
/// one less than the highest parallelism any kernel call has asked
/// for (the caller itself is always the +1).  Idle workers block on a
/// condition variable; multiple concurrent parallel sections (e.g.
/// three computing-party actor threads issuing matmuls at once) share
/// the same queue safely.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    for (auto& worker : workers_) {
      worker.join();
    }
  }

  /// Run `total` chunks of `job`; the caller participates and returns
  /// only when every chunk finished.
  void run(const std::shared_ptr<Job>& job, int max_workers) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ensure_workers(max_workers);
      jobs_.push_back(job);
    }
    queue_cv_.notify_all();

    std::size_t chunk;
    while ((chunk = job->next.fetch_add(1, std::memory_order_relaxed)) <
           job->total) {
      caller_chunks_counter().add(1);
      job->execute(chunk);
    }

    // Time only the wait for chunks still running on workers — that
    // tail is the pool's load-balance quality signal.
    const bool timed = obs::metrics_enabled();
    const std::uint64_t wait_start_us = timed ? obs::now_us() : 0;
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&] { return job->done >= job->total; });
    if (timed) {
      caller_wait_histogram().observe(obs::now_us() - wait_start_us);
    }
    if (job->error) {
      std::rethrow_exception(job->error);
    }
  }

 private:
  ThreadPool() = default;

  void ensure_workers(int wanted) {
    // Cap the pool well above any sane configuration but below
    // anything that could run away.
    constexpr int kMaxWorkers = 64;
    wanted = std::min(wanted, kMaxWorkers);
    while (static_cast<int>(workers_.size()) < wanted) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    t_in_pool_worker = true;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const bool timed = obs::metrics_enabled();
      const std::uint64_t idle_start_us = timed ? obs::now_us() : 0;
      queue_cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
      if (timed) {
        worker_idle_histogram().observe(obs::now_us() - idle_start_us);
      }
      if (stopping_) {
        return;
      }
      const std::shared_ptr<Job> job = jobs_.front();
      const std::size_t chunk =
          job->next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job->total) {
        // Exhausted: drop it from the queue (it may already be gone if
        // another worker raced us past the same state).
        if (!jobs_.empty() && jobs_.front() == job) {
          jobs_.pop_front();
        }
        continue;
      }
      lock.unlock();
      worker_chunks_counter().add(1);
      job->execute(chunk);
      lock.lock();
    }
  }

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

std::mutex& config_mutex() {
  static std::mutex mutex;
  return mutex;
}

KernelConfig& config_storage() {
  static KernelConfig config = KernelConfig::from_env();
  return config;
}

/// Deterministic chunk boundary: chunk c of n covers
/// [c*count/n, (c+1)*count/n).
std::size_t chunk_bound(std::size_t count, std::size_t chunks,
                        std::size_t index) {
  return count / chunks * index + count % chunks * index / chunks;
}

void run_chunked(const KernelConfig& config, std::size_t count,
                 std::size_t grain,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  const std::size_t chunks = plan_chunk_count(config, count, grain);
  if (chunks <= 1 || t_in_pool_worker) {
    inline_runs_counter().add(1);
    body(0, 0, count);
    return;
  }
  jobs_counter().add(1);
  auto job = std::make_shared<Job>();
  job->total = chunks;
  job->run_chunk = [&body, count, chunks](std::size_t chunk) {
    body(chunk, chunk_bound(count, chunks, chunk),
         chunk_bound(count, chunks, chunk + 1));
  };
  ThreadPool::instance().run(job, static_cast<int>(chunks) - 1);
}

}  // namespace

KernelConfig KernelConfig::from_env() {
  KernelConfig config;
  // Derive block sizes from the real cache hierarchy when the OS
  // reports it: the packed B panel (block_k x block_n) should occupy
  // about 1/16 of L2 (it is re-streamed once per block_m rows and
  // shares L2 with the A rows and C tile), and the A row slice
  // (block_k elements per row, block_m rows) should sit in L1d.  On a
  // 48K/2M part this lands on the tuned 128/128 panel; the compiled
  // 64/128/128 fallbacks hold where sysconf knows nothing.  Block
  // sizes never change results (see kernels.hpp).
  const std::size_t l2 = l2_cache_bytes();
  if (l2 > 0) {
    const std::size_t panel =
        pow2_floor(static_cast<std::size_t>(std::sqrt(
            static_cast<double>(l2) / (16.0 * sizeof(std::uint64_t)))));
    config.block_k = std::clamp<std::size_t>(panel, 64, 256);
    config.block_n = config.block_k;
  }
  const std::size_t l1d = l1d_cache_bytes();
  if (l1d > 0) {
    config.block_m = std::clamp<std::size_t>(
        pow2_floor(l1d / (sizeof(std::uint64_t) * config.block_k)), 16, 256);
  }
  config.threads = static_cast<int>(
      env_size("TRUSTDDL_THREADS", static_cast<std::size_t>(config.threads)));
  config.block_m = env_size("TRUSTDDL_BLOCK_M", config.block_m);
  config.block_k = env_size("TRUSTDDL_BLOCK_K", config.block_k);
  config.block_n = env_size("TRUSTDDL_BLOCK_N", config.block_n);
  config.grain = env_size("TRUSTDDL_GRAIN", config.grain);
  config.matmul_cutoff_bytes =
      env_size("TRUSTDDL_MATMUL_CUTOFF", config.matmul_cutoff_bytes);
  return config;
}

int KernelConfig::resolved_threads() const {
  if (threads > 0) {
    return threads;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

KernelConfig global_config() {
  std::lock_guard<std::mutex> lock(config_mutex());
  return config_storage();
}

void set_global_config(const KernelConfig& config) {
  std::lock_guard<std::mutex> lock(config_mutex());
  config_storage() = config;
}

std::size_t plan_chunk_count(const KernelConfig& config, std::size_t count,
                             std::size_t grain) {
  if (count == 0) {
    return 0;
  }
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t by_grain = (count + grain - 1) / grain;
  const auto by_threads =
      static_cast<std::size_t>(std::max(config.resolved_threads(), 1));
  return std::max<std::size_t>(1, std::min(by_grain, by_threads));
}

void parallel_for(const KernelConfig& config, std::size_t count,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  run_chunked(config, count, grain,
              [&body](std::size_t, std::size_t lo, std::size_t hi) {
                body(lo, hi);
              });
}

void parallel_for(std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(global_config(), count, grain, body);
}

void parallel_chunks(
    const KernelConfig& config, std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  run_chunked(config, count, grain, body);
}

void parallel_invoke(const KernelConfig& config,
                     std::initializer_list<std::function<void()>> tasks) {
  const std::vector<std::function<void()>> list(tasks);
  // grain = 1: every task is its own chunk (capped by config.threads).
  run_chunked(config, list.size(), 1,
              [&list](std::size_t, std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  list[i]();
                }
              });
}

void parallel_invoke(std::initializer_list<std::function<void()>> tasks) {
  parallel_invoke(global_config(), tasks);
}

template <typename T>
Tensor<T> matmul_naive(const Tensor<T>& lhs, const Tensor<T>& rhs) {
  TRUSTDDL_REQUIRE(lhs.rank() == 2 && rhs.rank() == 2,
                   "matmul requires rank-2 tensors");
  TRUSTDDL_REQUIRE(lhs.cols() == rhs.rows(),
                   "matmul inner dimensions differ: " +
                       shape_to_string(lhs.shape()) + " x " +
                       shape_to_string(rhs.shape()));
  const std::size_t m = lhs.rows();
  const std::size_t k = lhs.cols();
  const std::size_t n = rhs.cols();
  Tensor<T> out(Shape{m, n});
  const T* a = lhs.data();
  const T* b = rhs.data();
  T* c = out.data();
  // i-k-j loop order for contiguous inner access.  The zero-skip
  // predates the SIMD layer and stays ahead of the axpy call so both
  // paths see identical work (im2col output is zero-heavy).
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const T a_ip = a[i * k + p];
      if (a_ip == T{}) {
        continue;
      }
      axpy_row(c + i * n, a_ip, b + p * n, n);
    }
  }
  return out;
}

template <typename T>
Tensor<T> matmul_naive_parallel(const KernelConfig& config,
                                const Tensor<T>& lhs, const Tensor<T>& rhs) {
  TRUSTDDL_REQUIRE(lhs.rank() == 2 && rhs.rank() == 2,
                   "matmul requires rank-2 tensors");
  TRUSTDDL_REQUIRE(lhs.cols() == rhs.rows(),
                   "matmul inner dimensions differ: " +
                       shape_to_string(lhs.shape()) + " x " +
                       shape_to_string(rhs.shape()));
  const std::size_t m = lhs.rows();
  const std::size_t k = lhs.cols();
  const std::size_t n = rhs.cols();
  Tensor<T> out(Shape{m, n});
  const T* a = lhs.data();
  const T* b = rhs.data();
  T* c = out.data();
  // Chunk across output rows: each C row is written by exactly one
  // chunk and accumulates p ascending exactly like matmul_naive, so
  // the result is bit-identical to the serial loop at any thread
  // count.  grain_rows keeps each chunk above config.grain
  // multiply-adds.
  const std::size_t grain_rows =
      std::max<std::size_t>(1, config.grain / std::max<std::size_t>(k * n, 1));
  parallel_for(config, m, grain_rows, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t p = 0; p < k; ++p) {
        const T a_ip = a[i * k + p];
        if (a_ip == T{}) {
          continue;
        }
        axpy_row(c + i * n, a_ip, b + p * n, n);
      }
    }
  });
  return out;
}

namespace {

/// The RHS packed into column panels: panel jb holds columns
/// [jb*block_n, ...) of B contiguously, row-major within the panel, so
/// the innermost kernel loop streams both the panel row and the C row.
template <typename T>
struct PackedRhs {
  std::vector<T> data;
  std::size_t k = 0;
  std::size_t n = 0;
  std::size_t block_n = 0;

  const T* panel(std::size_t jb) const {
    return data.data() + jb * block_n * k;
  }
  std::size_t panel_cols(std::size_t j0) const {
    return std::min(block_n, n - j0);
  }
};

template <typename T>
PackedRhs<T> pack_rhs(const KernelConfig& config, const T* b, std::size_t k,
                      std::size_t n) {
  PackedRhs<T> packed;
  packed.k = k;
  packed.n = n;
  packed.block_n = std::max<std::size_t>(config.block_n, 8);
  const std::size_t panels = (n + packed.block_n - 1) / packed.block_n;
  packed.data.resize(panels * packed.block_n * k);
  // Pack panels in parallel: each panel writes a disjoint region; a
  // ragged last panel is zero-padded (the kernel never reads the pad,
  // but keeping the stride uniform simplifies addressing).
  parallel_for(config, panels, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t jb = lo; jb < hi; ++jb) {
      const std::size_t j0 = jb * packed.block_n;
      const std::size_t width = packed.panel_cols(j0);
      T* dst = packed.data.data() + jb * packed.block_n * k;
      for (std::size_t p = 0; p < k; ++p) {
        const T* src = b + p * n + j0;
        T* row = dst + p * packed.block_n;
        std::copy(src, src + width, row);
        std::fill(row + width, row + packed.block_n, T{});
      }
    }
  });
  return packed;
}

/// Blocked kernel over a row range of C.  Accumulation order for every
/// C element is p ascending (kb blocks ascend, p ascends within each
/// block), independent of the thread count and of the row chunking —
/// this is what makes the double path bit-identical across thread
/// counts.
template <typename T>
void matmul_rows(const KernelConfig& config, const T* a,
                 const PackedRhs<T>& packed, T* c, std::size_t row_lo,
                 std::size_t row_hi, std::size_t k, std::size_t n) {
  const std::size_t block_m = std::max<std::size_t>(config.block_m, 1);
  const std::size_t block_k = std::max<std::size_t>(config.block_k, 1);
  const std::size_t block_n = packed.block_n;
  for (std::size_t i0 = row_lo; i0 < row_hi; i0 += block_m) {
    const std::size_t i1 = std::min(i0 + block_m, row_hi);
    for (std::size_t j0 = 0; j0 < n; j0 += block_n) {
      const std::size_t width = packed.panel_cols(j0);
      const T* panel = packed.panel(j0 / block_n);
      for (std::size_t p0 = 0; p0 < k; p0 += block_k) {
        const std::size_t p1 = std::min(p0 + block_k, k);
        for (std::size_t i = i0; i < i1; ++i) {
          const T* a_row = a + i * k;
          T* c_row = c + i * n + j0;
          for (std::size_t p = p0; p < p1; ++p) {
            axpy_row(c_row, a_row[p], panel + p * block_n, width);
          }
        }
      }
    }
  }
}

}  // namespace

template <typename T>
Tensor<T> matmul_blocked(const KernelConfig& config, const Tensor<T>& lhs,
                         const Tensor<T>& rhs) {
  TRUSTDDL_REQUIRE(lhs.rank() == 2 && rhs.rank() == 2,
                   "matmul requires rank-2 tensors");
  TRUSTDDL_REQUIRE(lhs.cols() == rhs.rows(),
                   "matmul inner dimensions differ: " +
                       shape_to_string(lhs.shape()) + " x " +
                       shape_to_string(rhs.shape()));
  const std::size_t m = lhs.rows();
  const std::size_t k = lhs.cols();
  const std::size_t n = rhs.cols();
  Tensor<T> out(Shape{m, n});
  if (m == 0 || k == 0 || n == 0) {
    return out;
  }
  const PackedRhs<T> packed = pack_rhs(config, rhs.data(), k, n);
  const T* a = lhs.data();
  T* c = out.data();
  // Parallelise across output rows; grain keeps each chunk's share of
  // the k*n work above config.grain multiply-adds.
  const std::size_t per_row = std::max<std::size_t>(k * n / std::max<std::size_t>(m, 1), 1);
  const std::size_t grain_rows =
      std::max<std::size_t>(1, config.grain / std::max<std::size_t>(per_row, 1));
  parallel_for(config, m, grain_rows, [&](std::size_t lo, std::size_t hi) {
    matmul_rows(config, a, packed, c, lo, hi, k, n);
  });
  return out;
}

namespace {

/// L2-derived crossover fallback: panel packing starts paying once
/// the RHS no longer fits in L2.
std::size_t default_cutoff_bytes() {
  const std::size_t l2 = l2_cache_bytes();
  return l2 > 0 ? l2 : (1u << 21);
}

/// One-shot startup calibration of the naive/blocked crossover.
/// Times both kernels serially (SIMD active, threads = 1 so the probe
/// measures per-core kernel quality, which is what the shape-only
/// dispatch rule has to rank) on square-RHS probes straddling L2 and
/// places the cutoff at the geometric mean of the last naive-win and
/// first blocked-win RHS footprints.  Budget-capped: under sanitizers
/// or heavy load the probes are abandoned and the L2 default rules.
std::size_t calibrate_cutoff_bytes() {
  using clock = std::chrono::steady_clock;
  constexpr double kBudgetSeconds = 0.20;
  constexpr std::size_t kProbeRows = 32;
  constexpr std::size_t kProbeDims[] = {192, 384, 768, 1280};

  KernelConfig probe_config;  // compiled block fallbacks, serial
  probe_config.threads = 1;

  const auto seconds_since = [](clock::time_point start) {
    return std::chrono::duration<double>(clock::now() - start).count();
  };
  const auto fill = [](Tensor<std::uint64_t>& tensor) {
    std::uint64_t value = 0x9E3779B97F4A7C15ull;
    for (auto& element : tensor.values()) {
      element = value;
      value = value * 6364136223846793005ull + 1442695040888963407ull;
    }
  };

  const auto start = clock::now();
  std::size_t last_naive_win = 0;
  for (std::size_t dim : kProbeDims) {
    Tensor<std::uint64_t> a(Shape{kProbeRows, dim});
    Tensor<std::uint64_t> b(Shape{dim, dim});
    fill(a);
    fill(b);
    double naive_s = 1e30;
    double blocked_s = 1e30;
    for (int rep = 0; rep < 2; ++rep) {
      auto t0 = clock::now();
      const auto naive = matmul_naive_parallel(probe_config, a, b);
      naive_s = std::min(naive_s, seconds_since(t0));
      t0 = clock::now();
      const auto blocked = matmul_blocked(probe_config, a, b);
      blocked_s = std::min(blocked_s, seconds_since(t0));
      // Keep the results alive past the timers.
      if (naive.data()[0] + blocked.data()[0] == 0x5a5a5a5a5a5a5a5aull) {
        std::abort();
      }
    }
    const std::size_t rhs_bytes = dim * dim * sizeof(std::uint64_t);
    if (blocked_s < naive_s * 0.95) {
      // First shape where blocking clearly wins: put the crossover
      // between it and the last naive win (or L2/2 when blocking wins
      // from the first probe).
      const double lo = static_cast<double>(
          last_naive_win > 0 ? last_naive_win : default_cutoff_bytes() / 2);
      return std::clamp(static_cast<std::size_t>(std::sqrt(
                            lo * static_cast<double>(rhs_bytes))),
                        default_cutoff_bytes() / 2,
                        default_cutoff_bytes() * 2);
    }
    last_naive_win = rhs_bytes;
    if (seconds_since(start) > kBudgetSeconds) {
      // Out of budget (sanitizer build or loaded machine): trust what
      // we saw so far — naive won everywhere probed, so the crossover
      // is at least the largest probed footprint (or the L2 default
      // if that is bigger).
      break;
    }
  }
  // The short-row probes can overstate naive (a 32-row output never
  // amortizes panel packing the way a square product does), so the
  // calibrated crossover may move the L2 default by at most one
  // octave either way; far-from-L2 verdicts are probe artifacts, not
  // machine properties.  TRUSTDDL_MATMUL_CUTOFF pins past this clamp.
  const std::size_t floor_bytes = default_cutoff_bytes() / 2;
  const std::size_t ceil_bytes = default_cutoff_bytes() * 2;
  return std::clamp(std::max(last_naive_win, default_cutoff_bytes()),
                    floor_bytes, ceil_bytes);
}

std::size_t auto_cutoff_bytes() {
  static const std::size_t cached = [] {
    const char* raw = std::getenv("TRUSTDDL_CALIBRATE");
    if (raw != nullptr && std::strcmp(raw, "0") == 0) {
      return default_cutoff_bytes();
    }
    return calibrate_cutoff_bytes();
  }();
  return cached;
}

}  // namespace

std::size_t effective_matmul_cutoff_bytes(const KernelConfig& config) {
  if (config.matmul_cutoff_bytes > 0) {
    return config.matmul_cutoff_bytes;
  }
  return auto_cutoff_bytes();
}

template <typename T>
Tensor<T> matmul(const KernelConfig& config, const Tensor<T>& lhs,
                 const Tensor<T>& rhs) {
  // Shape-only dispatch (identical at every thread count): the
  // row-parallel naive loop until the RHS footprint outgrows the
  // auto-tuned crossover, the packed blocked kernel beyond it.  PR 3's
  // flop-count cutoff sent every skinny Table I product (n = 10) to
  // the blocked path, which loses 1.4-2.3x there because panel
  // packing pads 10 real columns to a full uniform-stride panel.
  if (lhs.rank() == 2 && rhs.rank() == 2) {
    const std::size_t rhs_bytes = rhs.rows() * rhs.cols() * sizeof(T);
    if (rhs_bytes <= effective_matmul_cutoff_bytes(config)) {
      return matmul_naive_parallel(config, lhs, rhs);
    }
  }
  return matmul_blocked(config, lhs, rhs);
}

template <typename T>
Tensor<T> matmul(const Tensor<T>& lhs, const Tensor<T>& rhs) {
  return matmul(global_config(), lhs, rhs);
}

template <typename T>
Tensor<T> hadamard_parallel(const KernelConfig& config, const Tensor<T>& lhs,
                            const Tensor<T>& rhs) {
  TRUSTDDL_REQUIRE(lhs.same_shape(rhs), "hadamard: shape mismatch");
  Tensor<T> out(lhs.shape());
  const T* a = lhs.data();
  const T* b = rhs.data();
  T* c = out.data();
  parallel_for(config, out.size(), config.grain,
               [&](std::size_t lo, std::size_t hi) {
                 mul_row(c + lo, a + lo, b + lo, hi - lo);
               });
  return out;
}

template <typename T>
Tensor<T> hadamard_parallel(const Tensor<T>& lhs, const Tensor<T>& rhs) {
  return hadamard_parallel(global_config(), lhs, rhs);
}

template Tensor<double> matmul_naive(const Tensor<double>&,
                                     const Tensor<double>&);
template Tensor<std::uint64_t> matmul_naive(const Tensor<std::uint64_t>&,
                                            const Tensor<std::uint64_t>&);
template Tensor<double> matmul_naive_parallel(const KernelConfig&,
                                              const Tensor<double>&,
                                              const Tensor<double>&);
template Tensor<std::uint64_t> matmul_naive_parallel(
    const KernelConfig&, const Tensor<std::uint64_t>&,
    const Tensor<std::uint64_t>&);
template Tensor<double> matmul_blocked(const KernelConfig&,
                                       const Tensor<double>&,
                                       const Tensor<double>&);
template Tensor<std::uint64_t> matmul_blocked(const KernelConfig&,
                                              const Tensor<std::uint64_t>&,
                                              const Tensor<std::uint64_t>&);
template Tensor<double> matmul(const KernelConfig&, const Tensor<double>&,
                               const Tensor<double>&);
template Tensor<std::uint64_t> matmul(const KernelConfig&,
                                      const Tensor<std::uint64_t>&,
                                      const Tensor<std::uint64_t>&);
template Tensor<double> matmul(const Tensor<double>&, const Tensor<double>&);
template Tensor<std::uint64_t> matmul(const Tensor<std::uint64_t>&,
                                      const Tensor<std::uint64_t>&);
template Tensor<double> hadamard_parallel(const KernelConfig&,
                                          const Tensor<double>&,
                                          const Tensor<double>&);
template Tensor<std::uint64_t> hadamard_parallel(const KernelConfig&,
                                                 const Tensor<std::uint64_t>&,
                                                 const Tensor<std::uint64_t>&);
template Tensor<double> hadamard_parallel(const Tensor<double>&,
                                          const Tensor<double>&);
template Tensor<std::uint64_t> hadamard_parallel(const Tensor<std::uint64_t>&,
                                                 const Tensor<std::uint64_t>&);

}  // namespace trustddl::kernels
