#include "numeric/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace trustddl::kernels {
namespace {

// Pool instrumentation.  Function-local statics cache the registry
// references so the enabled path costs one relaxed RMW and the
// disabled path one relaxed load (inside Counter::add / the explicit
// metrics_enabled() gates around clock reads).
obs::Counter& jobs_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("kernels.jobs");
  return counter;
}
obs::Counter& inline_runs_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("kernels.inline_runs");
  return counter;
}
obs::Counter& caller_chunks_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("kernels.chunks.caller");
  return counter;
}
obs::Counter& worker_chunks_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("kernels.chunks.worker");
  return counter;
}
obs::Histogram& caller_wait_histogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram("kernels.caller_wait_us");
  return histogram;
}
obs::Histogram& worker_idle_histogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram("kernels.worker_idle_us");
  return histogram;
}

/// True on pool worker threads: nested parallel sections run inline
/// there, which both avoids deadlock (a worker never blocks waiting on
/// work only it could execute) and keeps the outermost partition the
/// only one that matters for scheduling.
thread_local bool t_in_pool_worker = false;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw) {
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

/// A multi-chunk job: workers and the submitting caller claim chunk
/// indices from `next` until exhausted; `done` (guarded by `mutex`)
/// tracks completion for the caller's wait.
struct Job {
  std::function<void(std::size_t)> run_chunk;
  std::size_t total = 0;
  std::atomic<std::size_t> next{0};

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;
  std::exception_ptr error;

  void execute(std::size_t chunk) {
    std::exception_ptr failure;
    try {
      run_chunk(chunk);
    } catch (...) {
      failure = std::current_exception();
    }
    // On failure, cancel the chunks nobody has claimed yet: exchange
    // returns the claim counter at cancellation time, so chunks
    // [prev, total) will never run and must be accounted as done or
    // the submitter would wait forever.  Claims issued before the
    // exchange all execute (and count themselves); claims after it
    // see >= total and are no-ops.
    std::size_t cancelled = 0;
    if (failure) {
      const std::size_t prev = next.exchange(total, std::memory_order_relaxed);
      if (prev < total) {
        cancelled = total - prev;
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    if (failure && !error) {
      error = failure;
    }
    done += 1 + cancelled;
    if (done >= total) {
      done_cv.notify_all();
    }
  }
};

/// Persistent process-wide pool.  Workers are started lazily, up to
/// one less than the highest parallelism any kernel call has asked
/// for (the caller itself is always the +1).  Idle workers block on a
/// condition variable; multiple concurrent parallel sections (e.g.
/// three computing-party actor threads issuing matmuls at once) share
/// the same queue safely.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    for (auto& worker : workers_) {
      worker.join();
    }
  }

  /// Run `total` chunks of `job`; the caller participates and returns
  /// only when every chunk finished.
  void run(const std::shared_ptr<Job>& job, int max_workers) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ensure_workers(max_workers);
      jobs_.push_back(job);
    }
    queue_cv_.notify_all();

    std::size_t chunk;
    while ((chunk = job->next.fetch_add(1, std::memory_order_relaxed)) <
           job->total) {
      caller_chunks_counter().add(1);
      job->execute(chunk);
    }

    // Time only the wait for chunks still running on workers — that
    // tail is the pool's load-balance quality signal.
    const bool timed = obs::metrics_enabled();
    const std::uint64_t wait_start_us = timed ? obs::now_us() : 0;
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&] { return job->done >= job->total; });
    if (timed) {
      caller_wait_histogram().observe(obs::now_us() - wait_start_us);
    }
    if (job->error) {
      std::rethrow_exception(job->error);
    }
  }

 private:
  ThreadPool() = default;

  void ensure_workers(int wanted) {
    // Cap the pool well above any sane configuration but below
    // anything that could run away.
    constexpr int kMaxWorkers = 64;
    wanted = std::min(wanted, kMaxWorkers);
    while (static_cast<int>(workers_.size()) < wanted) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    t_in_pool_worker = true;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const bool timed = obs::metrics_enabled();
      const std::uint64_t idle_start_us = timed ? obs::now_us() : 0;
      queue_cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
      if (timed) {
        worker_idle_histogram().observe(obs::now_us() - idle_start_us);
      }
      if (stopping_) {
        return;
      }
      const std::shared_ptr<Job> job = jobs_.front();
      const std::size_t chunk =
          job->next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job->total) {
        // Exhausted: drop it from the queue (it may already be gone if
        // another worker raced us past the same state).
        if (!jobs_.empty() && jobs_.front() == job) {
          jobs_.pop_front();
        }
        continue;
      }
      lock.unlock();
      worker_chunks_counter().add(1);
      job->execute(chunk);
      lock.lock();
    }
  }

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

std::mutex& config_mutex() {
  static std::mutex mutex;
  return mutex;
}

KernelConfig& config_storage() {
  static KernelConfig config = KernelConfig::from_env();
  return config;
}

/// Deterministic chunk boundary: chunk c of n covers
/// [c*count/n, (c+1)*count/n).
std::size_t chunk_bound(std::size_t count, std::size_t chunks,
                        std::size_t index) {
  return count / chunks * index + count % chunks * index / chunks;
}

void run_chunked(const KernelConfig& config, std::size_t count,
                 std::size_t grain,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  const std::size_t chunks = plan_chunk_count(config, count, grain);
  if (chunks <= 1 || t_in_pool_worker) {
    inline_runs_counter().add(1);
    body(0, 0, count);
    return;
  }
  jobs_counter().add(1);
  auto job = std::make_shared<Job>();
  job->total = chunks;
  job->run_chunk = [&body, count, chunks](std::size_t chunk) {
    body(chunk, chunk_bound(count, chunks, chunk),
         chunk_bound(count, chunks, chunk + 1));
  };
  ThreadPool::instance().run(job, static_cast<int>(chunks) - 1);
}

}  // namespace

KernelConfig KernelConfig::from_env() {
  KernelConfig config;
  config.threads = static_cast<int>(
      env_size("TRUSTDDL_THREADS", static_cast<std::size_t>(config.threads)));
  config.block_m = env_size("TRUSTDDL_BLOCK_M", config.block_m);
  config.block_k = env_size("TRUSTDDL_BLOCK_K", config.block_k);
  config.block_n = env_size("TRUSTDDL_BLOCK_N", config.block_n);
  config.grain = env_size("TRUSTDDL_GRAIN", config.grain);
  return config;
}

int KernelConfig::resolved_threads() const {
  if (threads > 0) {
    return threads;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

KernelConfig global_config() {
  std::lock_guard<std::mutex> lock(config_mutex());
  return config_storage();
}

void set_global_config(const KernelConfig& config) {
  std::lock_guard<std::mutex> lock(config_mutex());
  config_storage() = config;
}

std::size_t plan_chunk_count(const KernelConfig& config, std::size_t count,
                             std::size_t grain) {
  if (count == 0) {
    return 0;
  }
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t by_grain = (count + grain - 1) / grain;
  const auto by_threads =
      static_cast<std::size_t>(std::max(config.resolved_threads(), 1));
  return std::max<std::size_t>(1, std::min(by_grain, by_threads));
}

void parallel_for(const KernelConfig& config, std::size_t count,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  run_chunked(config, count, grain,
              [&body](std::size_t, std::size_t lo, std::size_t hi) {
                body(lo, hi);
              });
}

void parallel_for(std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(global_config(), count, grain, body);
}

void parallel_chunks(
    const KernelConfig& config, std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  run_chunked(config, count, grain, body);
}

void parallel_invoke(const KernelConfig& config,
                     std::initializer_list<std::function<void()>> tasks) {
  const std::vector<std::function<void()>> list(tasks);
  // grain = 1: every task is its own chunk (capped by config.threads).
  run_chunked(config, list.size(), 1,
              [&list](std::size_t, std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  list[i]();
                }
              });
}

void parallel_invoke(std::initializer_list<std::function<void()>> tasks) {
  parallel_invoke(global_config(), tasks);
}

template <typename T>
Tensor<T> matmul_naive(const Tensor<T>& lhs, const Tensor<T>& rhs) {
  TRUSTDDL_REQUIRE(lhs.rank() == 2 && rhs.rank() == 2,
                   "matmul requires rank-2 tensors");
  TRUSTDDL_REQUIRE(lhs.cols() == rhs.rows(),
                   "matmul inner dimensions differ: " +
                       shape_to_string(lhs.shape()) + " x " +
                       shape_to_string(rhs.shape()));
  const std::size_t m = lhs.rows();
  const std::size_t k = lhs.cols();
  const std::size_t n = rhs.cols();
  Tensor<T> out(Shape{m, n});
  const T* a = lhs.data();
  const T* b = rhs.data();
  T* c = out.data();
  // i-k-j loop order for contiguous inner access.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const T a_ip = a[i * k + p];
      if (a_ip == T{}) {
        continue;
      }
      const T* b_row = b + p * n;
      T* c_row = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
  return out;
}

namespace {

/// The RHS packed into column panels: panel jb holds columns
/// [jb*block_n, ...) of B contiguously, row-major within the panel, so
/// the innermost kernel loop streams both the panel row and the C row.
template <typename T>
struct PackedRhs {
  std::vector<T> data;
  std::size_t k = 0;
  std::size_t n = 0;
  std::size_t block_n = 0;

  const T* panel(std::size_t jb) const {
    return data.data() + jb * block_n * k;
  }
  std::size_t panel_cols(std::size_t j0) const {
    return std::min(block_n, n - j0);
  }
};

template <typename T>
PackedRhs<T> pack_rhs(const KernelConfig& config, const T* b, std::size_t k,
                      std::size_t n) {
  PackedRhs<T> packed;
  packed.k = k;
  packed.n = n;
  packed.block_n = std::max<std::size_t>(config.block_n, 8);
  const std::size_t panels = (n + packed.block_n - 1) / packed.block_n;
  packed.data.resize(panels * packed.block_n * k);
  // Pack panels in parallel: each panel writes a disjoint region; a
  // ragged last panel is zero-padded (the kernel never reads the pad,
  // but keeping the stride uniform simplifies addressing).
  parallel_for(config, panels, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t jb = lo; jb < hi; ++jb) {
      const std::size_t j0 = jb * packed.block_n;
      const std::size_t width = packed.panel_cols(j0);
      T* dst = packed.data.data() + jb * packed.block_n * k;
      for (std::size_t p = 0; p < k; ++p) {
        const T* src = b + p * n + j0;
        T* row = dst + p * packed.block_n;
        std::copy(src, src + width, row);
        std::fill(row + width, row + packed.block_n, T{});
      }
    }
  });
  return packed;
}

/// Blocked kernel over a row range of C.  Accumulation order for every
/// C element is p ascending (kb blocks ascend, p ascends within each
/// block), independent of the thread count and of the row chunking —
/// this is what makes the double path bit-identical across thread
/// counts.
template <typename T>
void matmul_rows(const KernelConfig& config, const T* a,
                 const PackedRhs<T>& packed, T* c, std::size_t row_lo,
                 std::size_t row_hi, std::size_t k, std::size_t n) {
  const std::size_t block_m = std::max<std::size_t>(config.block_m, 1);
  const std::size_t block_k = std::max<std::size_t>(config.block_k, 1);
  const std::size_t block_n = packed.block_n;
  for (std::size_t i0 = row_lo; i0 < row_hi; i0 += block_m) {
    const std::size_t i1 = std::min(i0 + block_m, row_hi);
    for (std::size_t j0 = 0; j0 < n; j0 += block_n) {
      const std::size_t width = packed.panel_cols(j0);
      const T* panel = packed.panel(j0 / block_n);
      for (std::size_t p0 = 0; p0 < k; p0 += block_k) {
        const std::size_t p1 = std::min(p0 + block_k, k);
        for (std::size_t i = i0; i < i1; ++i) {
          const T* a_row = a + i * k;
          T* c_row = c + i * n + j0;
          for (std::size_t p = p0; p < p1; ++p) {
            const T a_ip = a_row[p];
            const T* b_row = panel + p * block_n;
            for (std::size_t j = 0; j < width; ++j) {
              c_row[j] += a_ip * b_row[j];
            }
          }
        }
      }
    }
  }
}

}  // namespace

template <typename T>
Tensor<T> matmul_blocked(const KernelConfig& config, const Tensor<T>& lhs,
                         const Tensor<T>& rhs) {
  TRUSTDDL_REQUIRE(lhs.rank() == 2 && rhs.rank() == 2,
                   "matmul requires rank-2 tensors");
  TRUSTDDL_REQUIRE(lhs.cols() == rhs.rows(),
                   "matmul inner dimensions differ: " +
                       shape_to_string(lhs.shape()) + " x " +
                       shape_to_string(rhs.shape()));
  const std::size_t m = lhs.rows();
  const std::size_t k = lhs.cols();
  const std::size_t n = rhs.cols();
  Tensor<T> out(Shape{m, n});
  if (m == 0 || k == 0 || n == 0) {
    return out;
  }
  const PackedRhs<T> packed = pack_rhs(config, rhs.data(), k, n);
  const T* a = lhs.data();
  T* c = out.data();
  // Parallelise across output rows; grain keeps each chunk's share of
  // the k*n work above config.grain multiply-adds.
  const std::size_t per_row = std::max<std::size_t>(k * n / std::max<std::size_t>(m, 1), 1);
  const std::size_t grain_rows =
      std::max<std::size_t>(1, config.grain / std::max<std::size_t>(per_row, 1));
  parallel_for(config, m, grain_rows, [&](std::size_t lo, std::size_t hi) {
    matmul_rows(config, a, packed, c, lo, hi, k, n);
  });
  return out;
}

template <typename T>
Tensor<T> matmul(const KernelConfig& config, const Tensor<T>& lhs,
                 const Tensor<T>& rhs) {
  // Tiny products: the packing pass and block bookkeeping cost more
  // than the multiply itself.  The cutoff is shape-only, so the
  // dispatch is identical at every thread count.
  constexpr std::size_t kNaiveCutoff = 16 * 1024;
  if (lhs.rank() == 2 && rhs.rank() == 2 &&
      lhs.rows() * lhs.cols() * rhs.cols() <= kNaiveCutoff) {
    return matmul_naive(lhs, rhs);
  }
  return matmul_blocked(config, lhs, rhs);
}

template <typename T>
Tensor<T> matmul(const Tensor<T>& lhs, const Tensor<T>& rhs) {
  return matmul(global_config(), lhs, rhs);
}

template <typename T>
Tensor<T> hadamard_parallel(const KernelConfig& config, const Tensor<T>& lhs,
                            const Tensor<T>& rhs) {
  TRUSTDDL_REQUIRE(lhs.same_shape(rhs), "hadamard: shape mismatch");
  Tensor<T> out(lhs.shape());
  const T* a = lhs.data();
  const T* b = rhs.data();
  T* c = out.data();
  parallel_for(config, out.size(), config.grain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   c[i] = a[i] * b[i];
                 }
               });
  return out;
}

template <typename T>
Tensor<T> hadamard_parallel(const Tensor<T>& lhs, const Tensor<T>& rhs) {
  return hadamard_parallel(global_config(), lhs, rhs);
}

template Tensor<double> matmul_naive(const Tensor<double>&,
                                     const Tensor<double>&);
template Tensor<std::uint64_t> matmul_naive(const Tensor<std::uint64_t>&,
                                            const Tensor<std::uint64_t>&);
template Tensor<double> matmul_blocked(const KernelConfig&,
                                       const Tensor<double>&,
                                       const Tensor<double>&);
template Tensor<std::uint64_t> matmul_blocked(const KernelConfig&,
                                              const Tensor<std::uint64_t>&,
                                              const Tensor<std::uint64_t>&);
template Tensor<double> matmul(const KernelConfig&, const Tensor<double>&,
                               const Tensor<double>&);
template Tensor<std::uint64_t> matmul(const KernelConfig&,
                                      const Tensor<std::uint64_t>&,
                                      const Tensor<std::uint64_t>&);
template Tensor<double> matmul(const Tensor<double>&, const Tensor<double>&);
template Tensor<std::uint64_t> matmul(const Tensor<std::uint64_t>&,
                                      const Tensor<std::uint64_t>&);
template Tensor<double> hadamard_parallel(const KernelConfig&,
                                          const Tensor<double>&,
                                          const Tensor<double>&);
template Tensor<std::uint64_t> hadamard_parallel(const KernelConfig&,
                                                 const Tensor<std::uint64_t>&,
                                                 const Tensor<std::uint64_t>&);
template Tensor<double> hadamard_parallel(const Tensor<double>&,
                                          const Tensor<double>&);
template Tensor<std::uint64_t> hadamard_parallel(const Tensor<std::uint64_t>&,
                                                 const Tensor<std::uint64_t>&);

}  // namespace trustddl::kernels
