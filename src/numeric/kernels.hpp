// Parallel compute-kernel subsystem.
//
// TrustDDL's cost model is dominated by local share arithmetic: every
// SecMatMul(-BT) invocation performs several full matrix products per
// party, and the Conv2D layers route all work through im2col + matmul.
// This module provides the shared substrate those hot paths run on:
//
//  * a persistent chunked thread pool exposed through `parallel_for`
//    with DETERMINISTIC work partitioning (chunk boundaries depend only
//    on the iteration count and the grain, never on timing),
//  * a cache-blocked matrix-multiply kernel with a packed/transposed
//    RHS for both `Tensor<std::uint64_t>` (the Z_{2^64} share domain)
//    and `Tensor<double>` (the plaintext reference engine),
//  * small helpers (parallel elementwise product, chunked reductions)
//    used by the tensor/conv/protocol layers.
//
// Determinism contract (asserted by tests/test_kernels.cpp):
//  * Ring kernels are BIT-IDENTICAL to the naive single-threaded loops
//    at any thread count — Z_{2^64} arithmetic is exact and every
//    output element is written by exactly one chunk.
//  * Double kernels use a fixed accumulation order that is independent
//    of the thread count (blocking is configured by block sizes, and
//    parallel chunks only partition disjoint output regions), so runs
//    with 1, 2 or N threads produce bit-identical doubles.  Blocked
//    double results may differ from the naive loop by normal
//    floating-point reassociation, which tests bound in ulps.
//
// Configuration: a process-global KernelConfig (env-overridable via
// TRUSTDDL_THREADS / TRUSTDDL_BLOCK_{M,K,N} / TRUSTDDL_GRAIN /
// TRUSTDDL_MATMUL_CUTOFF / TRUSTDDL_CALIBRATE) feeds the free tensor
// functions; mpc::PartyContext and core::EngineConfig carry a copy so
// protocol code and the engine can pin an explicit setting.
// `threads = 1` reproduces the pre-kernel serial behaviour exactly.
// Inner loops dispatch through numeric/simd.hpp (TRUSTDDL_SIMD
// selects the backend); every backend is bit-identical (see simd.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <utility>
#include <vector>

#include "numeric/tensor.hpp"

namespace trustddl::kernels {

struct KernelConfig {
  /// Worker parallelism for all kernels. 0 = hardware concurrency,
  /// 1 = run everything inline on the calling thread (exact pre-kernel
  /// behaviour), N = at most N-way chunking.
  int threads = 0;
  /// Cache block sizes for the blocked matmul: rows of A/C per block,
  /// depth of the K panel, and columns of the packed B panel.  The
  /// compiled fallbacks below are replaced by cache-size-derived
  /// values in from_env() when the OS reports L1d/L2 sizes (block
  /// sizes never change double results: accumulation per C element is
  /// always p-ascending and blocks partition disjoint outputs).
  std::size_t block_m = 64;
  std::size_t block_k = 128;
  std::size_t block_n = 128;
  /// Minimum elements of work per parallel chunk; below this the body
  /// runs inline.  Keeps tiny tensors (bias rows, scalars) off the
  /// pool.
  std::size_t grain = 4096;
  /// Naive/blocked matmul crossover, expressed as RHS footprint
  /// (k * n * sizeof(T) bytes): blocking pays only once the RHS
  /// outgrows L2 and panel packing starts earning its cost.  0 = use
  /// the per-process auto-tuned value (one-shot startup calibration,
  /// see DESIGN.md §4); >0 pins the crossover explicitly.
  std::size_t matmul_cutoff_bytes = 0;

  /// Defaults overridden by TRUSTDDL_THREADS, TRUSTDDL_BLOCK_M,
  /// TRUSTDDL_BLOCK_K, TRUSTDDL_BLOCK_N, TRUSTDDL_GRAIN and
  /// TRUSTDDL_MATMUL_CUTOFF; block sizes start from detected cache
  /// sizes when available.
  static KernelConfig from_env();

  /// The effective thread count (resolves 0 to hardware concurrency).
  int resolved_threads() const;
};

/// Snapshot of the process-global kernel configuration (initialised
/// from the environment on first use).
KernelConfig global_config();

/// Replace the process-global configuration.  Thread-safe; kernels
/// already running keep the snapshot they started with.
void set_global_config(const KernelConfig& config);

/// The matmul crossover the dispatcher will use for `config`:
/// config.matmul_cutoff_bytes when pinned, otherwise the per-process
/// calibrated value (computed once, on first use; TRUSTDDL_CALIBRATE=0
/// skips the timing probes and uses an L2-derived default).
std::size_t effective_matmul_cutoff_bytes(const KernelConfig& config);

/// Deterministic chunk count `parallel_for`/`parallel_chunks` will use
/// for `count` iterations at the given grain — exposed so reductions
/// can pre-size per-chunk partial buffers.
std::size_t plan_chunk_count(const KernelConfig& config, std::size_t count,
                             std::size_t grain);

/// Run body(lo, hi) over a deterministic partition of [0, count).
/// Chunks execute concurrently on the persistent pool (the caller
/// participates); nested calls from pool workers run inline.  The
/// partition depends only on (count, grain, config.threads) — bodies
/// that write disjoint output per index are therefore deterministic at
/// any thread count.  Exceptions thrown by the body are rethrown to
/// the caller (first one wins).
void parallel_for(const KernelConfig& config, std::size_t count,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// parallel_for against the process-global configuration.
void parallel_for(std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Like parallel_for but the body also receives the chunk index
/// (0 .. plan_chunk_count-1) for per-chunk partial reductions.
void parallel_chunks(
    const KernelConfig& config, std::size_t count, std::size_t grain,
    const std::function<void(std::size_t chunk, std::size_t lo,
                             std::size_t hi)>& body);

/// Run a handful of independent tasks concurrently; returns when all
/// finished.  Used for e.g. the three per-component commitment digests
/// of an optimistic opening (each digest stays byte-identical — only
/// the hashers run side by side).
void parallel_invoke(const KernelConfig& config,
                     std::initializer_list<std::function<void()>> tasks);
void parallel_invoke(std::initializer_list<std::function<void()>> tasks);

/// The seed's single-threaded triple-loop matmul, kept as the
/// differential-test oracle and the bench baseline.  Its inner loop
/// routes through the SIMD axpy primitive, which is bit-identical to
/// the scalar loop (exact ring; no-FMA doubles).
template <typename T>
Tensor<T> matmul_naive(const Tensor<T>& lhs, const Tensor<T>& rhs);

/// matmul_naive partitioned across output rows on the thread pool;
/// bit-identical to matmul_naive at any thread count (each C row is
/// written by exactly one chunk, per-element order unchanged).  This
/// is the dispatcher's small-RHS path.
template <typename T>
Tensor<T> matmul_naive_parallel(const KernelConfig& config,
                                const Tensor<T>& lhs, const Tensor<T>& rhs);

/// Cache-blocked matmul over a packed (transposed-panel) RHS,
/// parallelised across row blocks of the output.  See the determinism
/// contract above.
template <typename T>
Tensor<T> matmul_blocked(const KernelConfig& config, const Tensor<T>& lhs,
                         const Tensor<T>& rhs);

/// Dispatching matmul: row-parallel naive loop while the RHS fits in
/// cache (where panel packing costs more than it saves — every
/// Table I shape lands here), blocked kernel above the auto-tuned
/// crossover (see effective_matmul_cutoff_bytes).  The cutoff depends
/// only on the shape, never the thread count.
template <typename T>
Tensor<T> matmul(const KernelConfig& config, const Tensor<T>& lhs,
                 const Tensor<T>& rhs);
template <typename T>
Tensor<T> matmul(const Tensor<T>& lhs, const Tensor<T>& rhs);

/// Parallel elementwise product (exact in the ring; deterministic for
/// doubles — each element is one multiply).
template <typename T>
Tensor<T> hadamard_parallel(const KernelConfig& config, const Tensor<T>& lhs,
                            const Tensor<T>& rhs);
template <typename T>
Tensor<T> hadamard_parallel(const Tensor<T>& lhs, const Tensor<T>& rhs);

}  // namespace trustddl::kernels
