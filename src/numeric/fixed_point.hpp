// Fixed-point encoding over the ring Z_{2^64}.
//
// The paper (§IV-A) represents all secret values as 64-bit fixed-point
// integers (20 fractional bits for training, 32 mentioned for the
// microbenchmarks).  Shares are raw ring elements (`std::uint64_t` with
// wrap-around arithmetic); this header provides the encoding layer
// between real values and the ring, plus the signed-product truncation
// needed after fixed-point multiplication.
#pragma once

#include <cstdint>

namespace trustddl::fx {

/// Default fractional precision used for model training (paper §IV-B).
inline constexpr int kDefaultFracBits = 20;

/// Encode a real value into the ring as round(value * 2^frac_bits),
/// two's-complement.  Values whose magnitude exceeds 2^(63-frac_bits)
/// wrap, as they would in the paper's implementation.
std::uint64_t encode(double value, int frac_bits = kDefaultFracBits);

/// Decode a ring element back to a real value (signed interpretation).
double decode(std::uint64_t encoded, int frac_bits = kDefaultFracBits);

/// Product of two fixed-point values with rescaling: the 128-bit signed
/// product shifted right (arithmetically) by frac_bits.
std::uint64_t mul(std::uint64_t a, std::uint64_t b,
                  int frac_bits = kDefaultFracBits);

/// Arithmetic right shift by frac_bits in the signed interpretation;
/// rescales a double-precision (2·frac_bits) product back to single.
std::uint64_t truncate(std::uint64_t value, int frac_bits = kDefaultFracBits);

/// Absolute distance between two ring elements measured around the
/// ring: min(a-b, b-a) in unsigned wrap-around arithmetic.  This is the
/// `dist` measure of the Byzantine decision rule (paper §III-B).
std::uint64_t ring_distance(std::uint64_t a, std::uint64_t b);

/// Sign of a ring element in the signed interpretation:
/// -1, 0 or +1.  Used by SecComp (`sign(beta)`).
int sign(std::uint64_t value);

/// Largest representable magnitude for a given precision.
double max_representable(int frac_bits = kDefaultFracBits);

/// Absolute encoding error bound: one half unit in the last place.
double epsilon(int frac_bits = kDefaultFracBits);

}  // namespace trustddl::fx
