#include "numeric/serde.hpp"

namespace trustddl {

void write_tensor(ByteWriter& writer, const RingTensor& tensor) {
  writer.write_u64(tensor.rank());
  for (std::size_t dim : tensor.shape()) {
    writer.write_u64(dim);
  }
  writer.write_u64_span(tensor.data(), tensor.size());
}

RingTensor read_tensor(ByteReader& reader) {
  const std::uint64_t rank = reader.read_u64();
  if (rank > 8) {
    throw SerializationError("tensor rank too large: " + std::to_string(rank));
  }
  Shape shape(rank);
  for (auto& dim : shape) {
    dim = reader.read_u64();
  }
  const std::size_t count = shape_size(shape);
  if (count > reader.remaining() / 8) {
    throw SerializationError("tensor payload exceeds message size");
  }
  AlignedVector<std::uint64_t> data(count);
  reader.read_u64_span(data.data(), count);
  return RingTensor(std::move(shape), std::move(data));
}

Bytes tensor_to_bytes(const RingTensor& tensor) {
  ByteWriter writer;
  write_tensor(writer, tensor);
  return writer.take();
}

RingTensor tensor_from_bytes(const Bytes& data) {
  ByteReader reader(data);
  RingTensor tensor = read_tensor(reader);
  if (!reader.at_end()) {
    throw SerializationError("trailing bytes after tensor payload");
  }
  return tensor;
}

void write_real_tensor(ByteWriter& writer, const RealTensor& tensor) {
  writer.write_u64(tensor.rank());
  for (std::size_t dim : tensor.shape()) {
    writer.write_u64(dim);
  }
  for (double value : tensor.values()) {
    writer.write_double(value);
  }
}

RealTensor read_real_tensor(ByteReader& reader) {
  const std::uint64_t rank = reader.read_u64();
  if (rank > 8) {
    throw SerializationError("tensor rank too large: " + std::to_string(rank));
  }
  Shape shape(rank);
  for (auto& dim : shape) {
    dim = reader.read_u64();
  }
  const std::size_t count = shape_size(shape);
  AlignedVector<double> data(count);
  for (auto& value : data) {
    value = reader.read_double();
  }
  return RealTensor(std::move(shape), std::move(data));
}

}  // namespace trustddl
