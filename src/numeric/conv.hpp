// im2col / col2im transforms.
//
// TrustDDL decomposes convolution into matrix multiplication (a "local
// transformation" in the paper's taxonomy, §III-C): each party applies
// im2col to its *shares* locally — the transform is data-independent —
// and the actual multiply runs through SecMatMul / SecMatMul-BT.
#pragma once

#include <cstddef>

#include "numeric/tensor.hpp"

namespace trustddl {

/// Static description of a 2-D convolution.
struct ConvSpec {
  std::size_t in_channels = 1;
  std::size_t in_height = 0;
  std::size_t in_width = 0;
  std::size_t out_channels = 1;
  std::size_t kernel_h = 1;
  std::size_t kernel_w = 1;
  std::size_t pad = 0;
  std::size_t stride = 1;

  std::size_t out_height() const {
    return (in_height + 2 * pad - kernel_h) / stride + 1;
  }
  std::size_t out_width() const {
    return (in_width + 2 * pad - kernel_w) / stride + 1;
  }
  /// Rows of the im2col matrix: one per kernel position per channel.
  std::size_t col_rows() const { return in_channels * kernel_h * kernel_w; }
  /// Cols of the im2col matrix: one per output pixel.
  std::size_t col_cols() const { return out_height() * out_width(); }
};

/// Expand an input image of shape [C, H, W] (or flat [C*H*W]) into the
/// im2col matrix of shape [C*kh*kw, outH*outW]; zero padding.
template <typename T>
Tensor<T> im2col(const Tensor<T>& image, const ConvSpec& spec);

/// Fold an im2col-shaped gradient back onto the input image (adds
/// overlapping contributions); inverse transform for backprop.
template <typename T>
Tensor<T> col2im(const Tensor<T>& columns, const ConvSpec& spec);

/// im2col over a batch: input [batch, C*H*W] -> [k, batch*P] with one
/// block of P output-pixel columns per sample.
template <typename T>
Tensor<T> batch_im2col(const Tensor<T>& input, const ConvSpec& spec);

/// Inverse of batch_im2col (for the input gradient).
template <typename T>
Tensor<T> batch_col2im(const Tensor<T>& columns, const ConvSpec& spec,
                       std::size_t batch);

/// [outC, batch*P] feature maps -> [batch, outC*P] activation rows.
template <typename T>
Tensor<T> maps_to_rows(const Tensor<T>& maps, std::size_t batch,
                       std::size_t pixels);

/// Inverse of maps_to_rows.
template <typename T>
Tensor<T> rows_to_maps(const Tensor<T>& rows, std::size_t channels,
                       std::size_t pixels);

/// Row sums: [rows, cols] -> [rows] (conv bias gradients).
template <typename T>
Tensor<T> sum_cols(const Tensor<T>& matrix);

}  // namespace trustddl
