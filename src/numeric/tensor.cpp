#include "numeric/tensor.hpp"

#include <cmath>

#include "numeric/fixed_point.hpp"

namespace trustddl {

std::string shape_to_string(const Shape& shape) {
  std::string out = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

std::size_t shape_size(const Shape& shape) {
  std::size_t total = 1;
  for (std::size_t dim : shape) {
    total *= dim;
  }
  return shape.empty() ? 0 : total;
}

template <typename T>
Tensor<T> matmul(const Tensor<T>& lhs, const Tensor<T>& rhs) {
  TRUSTDDL_REQUIRE(lhs.rank() == 2 && rhs.rank() == 2,
                   "matmul requires rank-2 tensors");
  TRUSTDDL_REQUIRE(lhs.cols() == rhs.rows(),
                   "matmul inner dimensions differ: " +
                       shape_to_string(lhs.shape()) + " x " +
                       shape_to_string(rhs.shape()));
  const std::size_t m = lhs.rows();
  const std::size_t k = lhs.cols();
  const std::size_t n = rhs.cols();
  Tensor<T> out(Shape{m, n});
  const T* a = lhs.data();
  const T* b = rhs.data();
  T* c = out.data();
  // i-k-j loop order for contiguous inner access.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const T a_ip = a[i * k + p];
      if (a_ip == T{}) {
        continue;
      }
      const T* b_row = b + p * n;
      T* c_row = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
  return out;
}

template <typename T>
Tensor<T> transpose(const Tensor<T>& input) {
  TRUSTDDL_REQUIRE(input.rank() == 2, "transpose requires a rank-2 tensor");
  const std::size_t rows = input.rows();
  const std::size_t cols = input.cols();
  Tensor<T> out(Shape{cols, rows});
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      out.at(j, i) = input.at(i, j);
    }
  }
  return out;
}

template <typename T>
Tensor<T> sum_rows(const Tensor<T>& tensor) {
  TRUSTDDL_REQUIRE(tensor.rank() == 2, "sum_rows requires a rank-2 tensor");
  Tensor<T> out(Shape{1, tensor.cols()});
  for (std::size_t i = 0; i < tensor.rows(); ++i) {
    for (std::size_t j = 0; j < tensor.cols(); ++j) {
      out.at(0, j) += tensor.at(i, j);
    }
  }
  return out;
}

template Tensor<double> matmul(const Tensor<double>&, const Tensor<double>&);
template Tensor<std::uint64_t> matmul(const Tensor<std::uint64_t>&,
                                      const Tensor<std::uint64_t>&);
template Tensor<double> transpose(const Tensor<double>&);
template Tensor<std::uint64_t> transpose(const Tensor<std::uint64_t>&);
template Tensor<double> sum_rows(const Tensor<double>&);
template Tensor<std::uint64_t> sum_rows(const Tensor<std::uint64_t>&);

std::size_t argmax(const RealTensor& tensor) {
  TRUSTDDL_REQUIRE(!tensor.empty(), "argmax of empty tensor");
  std::size_t best = 0;
  for (std::size_t i = 1; i < tensor.size(); ++i) {
    if (tensor[i] > tensor[best]) {
      best = i;
    }
  }
  return best;
}

RingTensor to_ring(const RealTensor& real, int frac_bits) {
  RingTensor out(real.shape());
  for (std::size_t i = 0; i < real.size(); ++i) {
    out[i] = fx::encode(real[i], frac_bits);
  }
  return out;
}

RealTensor to_real(const RingTensor& ring, int frac_bits) {
  RealTensor out(ring.shape());
  for (std::size_t i = 0; i < ring.size(); ++i) {
    out[i] = fx::decode(ring[i], frac_bits);
  }
  return out;
}

RingTensor truncate(const RingTensor& ring, int frac_bits) {
  RingTensor out(ring.shape());
  for (std::size_t i = 0; i < ring.size(); ++i) {
    out[i] = fx::truncate(ring[i], frac_bits);
  }
  return out;
}

std::uint64_t ring_distance(const RingTensor& lhs, const RingTensor& rhs) {
  TRUSTDDL_REQUIRE(lhs.same_shape(rhs), "ring_distance shape mismatch");
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    worst = std::max(worst, fx::ring_distance(lhs[i], rhs[i]));
  }
  return worst;
}

double max_abs_diff(const RealTensor& lhs, const RealTensor& rhs) {
  TRUSTDDL_REQUIRE(lhs.same_shape(rhs), "max_abs_diff shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    worst = std::max(worst, std::fabs(lhs[i] - rhs[i]));
  }
  return worst;
}

}  // namespace trustddl
