#include "numeric/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/fixed_point.hpp"
#include "numeric/kernels.hpp"
#include "numeric/simd.hpp"

namespace trustddl {

std::string shape_to_string(const Shape& shape) {
  std::string out = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

std::size_t shape_size(const Shape& shape) {
  std::size_t total = 1;
  for (std::size_t dim : shape) {
    total *= dim;
  }
  return shape.empty() ? 0 : total;
}

template <typename T>
Tensor<T> matmul(const Tensor<T>& lhs, const Tensor<T>& rhs) {
  // Blocked, thread-pooled kernel (falls back to the naive loop for
  // tiny products); see numeric/kernels.hpp for the determinism
  // contract.
  return kernels::matmul(lhs, rhs);
}

template <typename T>
Tensor<T> transpose(const Tensor<T>& input) {
  TRUSTDDL_REQUIRE(input.rank() == 2, "transpose requires a rank-2 tensor");
  const std::size_t rows = input.rows();
  const std::size_t cols = input.cols();
  Tensor<T> out(Shape{cols, rows});
  const T* src = input.data();
  T* dst = out.data();
  // Cache-blocked: both the row-major read and the strided write stay
  // within one block, so each cache line fetched for `dst` is reused
  // kBlock times instead of once.
  constexpr std::size_t kBlock = 32;
  kernels::parallel_for(rows, kBlock * kBlock, [&](std::size_t lo,
                                                   std::size_t hi) {
    for (std::size_t i0 = lo; i0 < hi; i0 += kBlock) {
      const std::size_t i1 = std::min(i0 + kBlock, hi);
      for (std::size_t j0 = 0; j0 < cols; j0 += kBlock) {
        const std::size_t j1 = std::min(j0 + kBlock, cols);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t j = j0; j < j1; ++j) {
            dst[j * rows + i] = src[i * cols + j];
          }
        }
      }
    }
  });
  return out;
}

template <typename T>
Tensor<T> sum_rows(const Tensor<T>& tensor) {
  TRUSTDDL_REQUIRE(tensor.rank() == 2, "sum_rows requires a rank-2 tensor");
  const std::size_t rows = tensor.rows();
  const std::size_t cols = tensor.cols();
  Tensor<T> out(Shape{1, cols});
  const T* src = tensor.data();
  T* dst = out.data();
  // Row-major accumulation: parallel over output columns so every
  // chunk owns a disjoint slice of `dst` and rows are added in the
  // same (ascending) order as the serial loop — deterministic for
  // doubles at any thread count.
  kernels::parallel_for(cols, 1024, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = 0; i < rows; ++i) {
      const T* row = src + i * cols;
      for (std::size_t j = lo; j < hi; ++j) {
        dst[j] += row[j];
      }
    }
  });
  return out;
}

template Tensor<double> matmul(const Tensor<double>&, const Tensor<double>&);
template Tensor<std::uint64_t> matmul(const Tensor<std::uint64_t>&,
                                      const Tensor<std::uint64_t>&);
template Tensor<double> transpose(const Tensor<double>&);
template Tensor<std::uint64_t> transpose(const Tensor<std::uint64_t>&);
template Tensor<double> sum_rows(const Tensor<double>&);
template Tensor<std::uint64_t> sum_rows(const Tensor<std::uint64_t>&);

std::size_t argmax(const RealTensor& tensor) {
  TRUSTDDL_REQUIRE(!tensor.empty(), "argmax of empty tensor");
  std::size_t best = 0;
  for (std::size_t i = 1; i < tensor.size(); ++i) {
    if (tensor[i] > tensor[best]) {
      best = i;
    }
  }
  return best;
}

RingTensor to_ring(const RealTensor& real, int frac_bits) {
  RingTensor out(real.shape());
  const double* src = real.data();
  std::uint64_t* dst = out.data();
  kernels::parallel_for(real.size(), 4096,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) {
                            dst[i] = fx::encode(src[i], frac_bits);
                          }
                        });
  return out;
}

RealTensor to_real(const RingTensor& ring, int frac_bits) {
  RealTensor out(ring.shape());
  const std::uint64_t* src = ring.data();
  double* dst = out.data();
  kernels::parallel_for(ring.size(), 4096,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) {
                            dst[i] = fx::decode(src[i], frac_bits);
                          }
                        });
  return out;
}

RingTensor truncate(const RingTensor& ring, int frac_bits) {
  RingTensor out(ring.shape());
  const std::uint64_t* src = ring.data();
  std::uint64_t* dst = out.data();
  // fx::truncate is an arithmetic shift in the signed interpretation;
  // simd::ring_truncate is its vectorized twin (bit-identical).
  kernels::parallel_for(ring.size(), 4096,
                        [&](std::size_t lo, std::size_t hi) {
                          simd::ring_truncate(dst + lo, src + lo, frac_bits,
                                              hi - lo);
                        });
  return out;
}

std::uint64_t ring_distance(const RingTensor& lhs, const RingTensor& rhs) {
  TRUSTDDL_REQUIRE(lhs.same_shape(rhs), "ring_distance shape mismatch");
  const kernels::KernelConfig config = kernels::global_config();
  const std::size_t chunks =
      kernels::plan_chunk_count(config, lhs.size(), 4096);
  std::vector<std::uint64_t> partial(chunks, 0);
  const std::uint64_t* a = lhs.data();
  const std::uint64_t* b = rhs.data();
  kernels::parallel_chunks(
      config, lhs.size(), 4096,
      [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        std::uint64_t worst = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          worst = std::max(worst, fx::ring_distance(a[i], b[i]));
        }
        partial[chunk] = worst;
      });
  std::uint64_t worst = 0;
  for (std::uint64_t value : partial) {
    worst = std::max(worst, value);
  }
  return worst;
}

double max_abs_diff(const RealTensor& lhs, const RealTensor& rhs) {
  TRUSTDDL_REQUIRE(lhs.same_shape(rhs), "max_abs_diff shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    worst = std::max(worst, std::fabs(lhs[i] - rhs[i]));
  }
  return worst;
}

}  // namespace trustddl
