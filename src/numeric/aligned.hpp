// 64-byte-aligned storage for tensor data.
//
// The SIMD kernels (numeric/simd.hpp) issue 32-byte vector loads; on
// the Xeons this repo benches on, a 32-byte load that straddles a
// cache line costs roughly twice a contained one, and glibc malloc
// only guarantees 16-byte alignment — which put every other vector
// load on a line split and capped the elementwise kernels near their
// scalar throughput.  Aligning every tensor buffer to a cache line
// removes the splits (and keeps one row panel from sharing lines with
// its neighbour under the thread pool).
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace trustddl {

/// Minimal C++17 allocator handing out 64-byte-aligned blocks.
template <typename T>
struct AlignedAllocator {
  static constexpr std::size_t kAlignment = 64;
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t count) {
    return static_cast<T*>(
        ::operator new(count * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* pointer, std::size_t) noexcept {
    ::operator delete(pointer, std::align_val_t{kAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// The tensor storage container: a std::vector whose data() is
/// cache-line aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace trustddl
