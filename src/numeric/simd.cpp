#include "numeric/simd.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TRUSTDDL_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#endif

#if defined(__aarch64__)
#define TRUSTDDL_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace trustddl::simd {
namespace {

// --- Scalar reference loops ----------------------------------------
//
// These ARE the semantics: every vector path below must produce
// bit-identical output (tests/test_simd.cpp pits them against each
// other on wraparound-heavy inputs, tails, and unaligned offsets).

void ring_add_scalar(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] + b[i];
  }
}

void ring_sub_scalar(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] - b[i];
  }
}

void ring_mul_scalar(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] * b[i];
  }
}

void ring_scale_scalar(std::uint64_t* dst, const std::uint64_t* a,
                       std::uint64_t factor, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] * factor;
  }
}

void ring_axpy_scalar(std::uint64_t* c, std::uint64_t a,
                      const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    c[i] += a * b[i];
  }
}

void ring_truncate_scalar(std::uint64_t* dst, const std::uint64_t* a,
                          int frac_bits, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(a[i]) >>
                                        frac_bits);
  }
}

void real_axpy_scalar(double* c, double a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    c[i] += a * b[i];
  }
}

void real_mul_scalar(double* dst, const double* a, const double* b,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] * b[i];
  }
}

#if defined(TRUSTDDL_SIMD_HAVE_AVX2)

// --- AVX2, 4 x u64 / 4 x double ------------------------------------
//
// Compiled with per-function target attributes so the rest of the
// binary stays baseline x86-64; only reachable after the runtime
// cpuid + xgetbv probe in simd.hpp says AVX2 is usable.

#define TRUSTDDL_AVX2 __attribute__((target("avx2")))

// The add/sub/mul/axpy loops are hand-unrolled two vectors deep: the
// compiler does not unroll intrinsic loops, and a single 32-byte
// stream leaves the second load port idle (measured ~1.45x vs ~1.6x
// over the autovectorized scalar loop on the bench Xeon).  Per-element
// operation order is unchanged, so unrolling cannot affect results.
TRUSTDDL_AVX2 void ring_add_avx2(std::uint64_t* dst, const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i va1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4));
    const __m256i vb1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(va0, vb0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        _mm256_add_epi64(va1, vb1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(va, vb));
  }
  ring_add_scalar(dst + i, a + i, b + i, n - i);
}

TRUSTDDL_AVX2 void ring_sub_avx2(std::uint64_t* dst, const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i va1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4));
    const __m256i vb1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_sub_epi64(va0, vb0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        _mm256_sub_epi64(va1, vb1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_sub_epi64(va, vb));
  }
  ring_sub_scalar(dst + i, a + i, b + i, n - i);
}

// AVX2 has no 64x64->64 multiply; build it from 32x32->64 halves:
//   a*b mod 2^64 = lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32)
TRUSTDDL_AVX2 inline __m256i mul_epu64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                         _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

TRUSTDDL_AVX2 void ring_mul_avx2(std::uint64_t* dst, const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i va1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4));
    const __m256i vb1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_epu64(va0, vb0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        mul_epu64(va1, vb1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_epu64(va, vb));
  }
  ring_mul_scalar(dst + i, a + i, b + i, n - i);
}

TRUSTDDL_AVX2 void ring_scale_avx2(std::uint64_t* dst, const std::uint64_t* a,
                                   std::uint64_t factor, std::size_t n) {
  const __m256i vf = _mm256_set1_epi64x(static_cast<long long>(factor));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_epu64(va, vf));
  }
  ring_scale_scalar(dst + i, a + i, factor, n - i);
}

TRUSTDDL_AVX2 void ring_axpy_avx2(std::uint64_t* c, std::uint64_t a,
                                  const std::uint64_t* b, std::size_t n) {
  const __m256i va = _mm256_set1_epi64x(static_cast<long long>(a));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vb0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    const __m256i vb1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4));
    const __m256i vc1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i),
                        _mm256_add_epi64(vc0, mul_epu64(va, vb0)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i + 4),
                        _mm256_add_epi64(vc1, mul_epu64(va, vb1)));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i),
                        _mm256_add_epi64(vc, mul_epu64(va, vb)));
  }
  ring_axpy_scalar(c + i, a, b + i, n - i);
}

// AVX2 has no 64-bit arithmetic shift; synthesize sign extension from
// the logical shift: (x >>l s) ^ m) - m with m = 1 << (63 - s).
TRUSTDDL_AVX2 void ring_truncate_avx2(std::uint64_t* dst,
                                      const std::uint64_t* a, int frac_bits,
                                      std::size_t n) {
  if (frac_bits <= 0) {
    if (dst != a) {
      ring_truncate_scalar(dst, a, 0, n);
    }
    return;
  }
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(1ull << (63 - frac_bits)));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i logical = _mm256_srli_epi64(va, frac_bits);
    const __m256i arithmetic =
        _mm256_sub_epi64(_mm256_xor_si256(logical, sign), sign);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), arithmetic);
  }
  ring_truncate_scalar(dst + i, a + i, frac_bits, n - i);
}

// Separate mul + add on purpose: an FMA would round once where the
// scalar loop rounds twice, breaking bit-identity with the scalar
// reference (x86-64 baseline has no FMA, so scalar cannot contract).
TRUSTDDL_AVX2 void real_axpy_avx2(double* c, double a, const double* b,
                                  std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vb = _mm256_loadu_pd(b + i);
    const __m256d vc = _mm256_loadu_pd(c + i);
    _mm256_storeu_pd(c + i, _mm256_add_pd(vc, _mm256_mul_pd(va, vb)));
  }
  real_axpy_scalar(c + i, a, b + i, n - i);
}

TRUSTDDL_AVX2 void real_mul_avx2(double* dst, const double* a, const double* b,
                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i,
                     _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                   _mm256_loadu_pd(b + i)));
  }
  real_mul_scalar(dst + i, a + i, b + i, n - i);
}

#undef TRUSTDDL_AVX2
#endif  // TRUSTDDL_SIMD_HAVE_AVX2

#if defined(TRUSTDDL_SIMD_HAVE_NEON)

// --- NEON, 2 x u64 / 2 x double ------------------------------------

void ring_add_neon(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vaddq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  ring_add_scalar(dst + i, a + i, b + i, n - i);
}

void ring_sub_neon(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vsubq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  ring_sub_scalar(dst + i, a + i, b + i, n - i);
}

void ring_truncate_neon(std::uint64_t* dst, const std::uint64_t* a,
                        int frac_bits, std::size_t n) {
  if (frac_bits <= 0) {
    if (dst != a) {
      ring_truncate_scalar(dst, a, 0, n);
    }
    return;
  }
  const int64x2_t shift = vdupq_n_s64(-frac_bits);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t va = vreinterpretq_s64_u64(vld1q_u64(a + i));
    vst1q_u64(dst + i, vreinterpretq_u64_s64(vshlq_s64(va, shift)));
  }
  ring_truncate_scalar(dst + i, a + i, frac_bits, n - i);
}

// NEON has no 64x64 multiply either; the 32-bit-half decomposition
// costs about as much as scalar mul on most cores, so mul/scale/axpy
// stay scalar on aarch64.  real_* also stay scalar: GCC may contract
// a*b+c into FMA in scalar code on aarch64 (-ffp-contract=fast is the
// default), so a hand-vectorized no-FMA loop would NOT be
// bit-identical to the scalar reference there.

#endif  // TRUSTDDL_SIMD_HAVE_NEON

}  // namespace

void ring_add(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, std::size_t n) {
  switch (active_backend()) {
#if defined(TRUSTDDL_SIMD_HAVE_AVX2)
    case Backend::kAvx2:
      ring_add_avx2(dst, a, b, n);
      return;
#endif
#if defined(TRUSTDDL_SIMD_HAVE_NEON)
    case Backend::kNeon:
      ring_add_neon(dst, a, b, n);
      return;
#endif
    default:
      ring_add_scalar(dst, a, b, n);
      return;
  }
}

void ring_sub(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, std::size_t n) {
  switch (active_backend()) {
#if defined(TRUSTDDL_SIMD_HAVE_AVX2)
    case Backend::kAvx2:
      ring_sub_avx2(dst, a, b, n);
      return;
#endif
#if defined(TRUSTDDL_SIMD_HAVE_NEON)
    case Backend::kNeon:
      ring_sub_neon(dst, a, b, n);
      return;
#endif
    default:
      ring_sub_scalar(dst, a, b, n);
      return;
  }
}

void ring_mul(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, std::size_t n) {
  switch (active_backend()) {
#if defined(TRUSTDDL_SIMD_HAVE_AVX2)
    case Backend::kAvx2:
      ring_mul_avx2(dst, a, b, n);
      return;
#endif
    default:
      ring_mul_scalar(dst, a, b, n);
      return;
  }
}

void ring_scale(std::uint64_t* dst, const std::uint64_t* a,
                std::uint64_t factor, std::size_t n) {
  switch (active_backend()) {
#if defined(TRUSTDDL_SIMD_HAVE_AVX2)
    case Backend::kAvx2:
      ring_scale_avx2(dst, a, factor, n);
      return;
#endif
    default:
      ring_scale_scalar(dst, a, factor, n);
      return;
  }
}

void ring_axpy(std::uint64_t* c, std::uint64_t a, const std::uint64_t* b,
               std::size_t n) {
  switch (active_backend()) {
#if defined(TRUSTDDL_SIMD_HAVE_AVX2)
    case Backend::kAvx2:
      ring_axpy_avx2(c, a, b, n);
      return;
#endif
    default:
      ring_axpy_scalar(c, a, b, n);
      return;
  }
}

void ring_truncate(std::uint64_t* dst, const std::uint64_t* a, int frac_bits,
                   std::size_t n) {
  switch (active_backend()) {
#if defined(TRUSTDDL_SIMD_HAVE_AVX2)
    case Backend::kAvx2:
      ring_truncate_avx2(dst, a, frac_bits, n);
      return;
#endif
#if defined(TRUSTDDL_SIMD_HAVE_NEON)
    case Backend::kNeon:
      ring_truncate_neon(dst, a, frac_bits, n);
      return;
#endif
    default:
      ring_truncate_scalar(dst, a, frac_bits, n);
      return;
  }
}

void real_axpy(double* c, double a, const double* b, std::size_t n) {
  switch (active_backend()) {
#if defined(TRUSTDDL_SIMD_HAVE_AVX2)
    case Backend::kAvx2:
      real_axpy_avx2(c, a, b, n);
      return;
#endif
    default:
      real_axpy_scalar(c, a, b, n);
      return;
  }
}

void real_mul(double* dst, const double* a, const double* b, std::size_t n) {
  switch (active_backend()) {
#if defined(TRUSTDDL_SIMD_HAVE_AVX2)
    case Backend::kAvx2:
      real_mul_avx2(dst, a, b, n);
      return;
#endif
    default:
      real_mul_scalar(dst, a, b, n);
      return;
  }
}

}  // namespace trustddl::simd
