// Portable explicit-vectorization layer for the ring and digest hot
// loops (DESIGN.md §4, "SIMD backends & dispatch auto-tuning").
//
// Three backends:
//  * kAvx2   — x86-64, 4 x u64 / 4 x double lanes via AVX2 intrinsics
//              compiled with per-function target attributes, so the
//              translation unit itself stays portable (-O2 baseline);
//              picked only when a runtime cpuid + xgetbv probe shows
//              the CPU and OS actually support AVX2.
//  * kNeon   — aarch64, 2 x u64 lanes (NEON is baseline on aarch64).
//  * kScalar — the reference loops; always available and the oracle
//              every differential test compares against.
//
// Selection: compile-time support ∩ runtime CPU detection, overridable
// with TRUSTDDL_SIMD=scalar|avx2|neon|auto (an unsupported request
// falls back to the detected backend with a warning) and, for tests,
// with force_backend().
//
// Determinism contract: every ring primitive is BIT-IDENTICAL to its
// scalar loop at any lane width — Z_{2^64} arithmetic is exact and the
// primitives are elementwise or use per-element independent
// accumulators, so lane order is free.  The real (double) primitives
// use separate multiply and add (never FMA) and keep the scalar
// loop's per-element accumulation order, so they too are bit-identical
// to scalar.  This is what lets the auto-dispatcher switch backends
// without perturbing trained weights (tests/test_simd.cpp,
// KernelDeterminismTest).
//
// The detection half of this header is inline on purpose: common/
// sha256.cpp consults active_backend() without linking the numeric
// library.  The vector primitives below are defined in simd.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace trustddl::simd {

enum class Backend : int { kScalar = 0, kAvx2 = 1, kNeon = 2 };

inline const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
    case Backend::kScalar:
    default:
      return "scalar";
  }
}

/// True when this build contains code for the backend at all.
inline constexpr bool compiled_with(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return true;
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

namespace detail {

#if defined(__x86_64__) || defined(__i386__)
inline bool x86_leaf7_bit(unsigned reg_bit, bool ebx_reg) {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) {
    return false;
  }
  const unsigned reg = ebx_reg ? ebx : ecx;
  return (reg & (1u << reg_bit)) != 0;
}

/// AVX2 usable: CPU advertises it AND the OS saves ymm state
/// (OSXSAVE + xgetbv check — a hypervisor can expose AVX2 in cpuid
/// while the guest kernel never enables it).
inline bool x86_avx2_usable() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) {
    return false;
  }
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) {
    return false;
  }
  unsigned lo = 0, hi = 0;
  __asm__ __volatile__("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  if ((lo & 0x6) != 0x6) {  // xmm + ymm state enabled
    return false;
  }
  return x86_leaf7_bit(5, /*ebx_reg=*/true);
}

inline bool x86_sha_ni_usable() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) {
    return false;
  }
  const bool sse41 = (ecx & (1u << 19)) != 0;
  return sse41 && x86_leaf7_bit(29, /*ebx_reg=*/true);
}
#endif

inline std::atomic<int>& backend_override() {
  static std::atomic<int> forced{-1};
  return forced;
}

}  // namespace detail

/// Compile-time support AND the running CPU/OS can execute it.
inline bool cpu_supports(Backend backend) {
  if (backend == Backend::kScalar) {
    return true;
  }
  if (!compiled_with(backend)) {
    return false;
  }
#if defined(__x86_64__)
  if (backend == Backend::kAvx2) {
    static const bool usable = detail::x86_avx2_usable();
    return usable;
  }
#endif
#if defined(__aarch64__)
  if (backend == Backend::kNeon) {
    return true;  // NEON is architecturally baseline on aarch64
  }
#endif
  return false;
}

/// SHA-NI (x86 SHA extensions) available — consulted by the SHA-256
/// dispatch; independent of the ring backend but gated by the same
/// TRUSTDDL_SIMD=scalar kill switch.
inline bool cpu_has_sha_ni() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool usable = detail::x86_sha_ni_usable();
  return usable;
#else
  return false;
#endif
}

/// The best backend this CPU supports, ignoring overrides.
inline Backend detected_backend() {
  if (cpu_supports(Backend::kAvx2)) {
    return Backend::kAvx2;
  }
  if (cpu_supports(Backend::kNeon)) {
    return Backend::kNeon;
  }
  return Backend::kScalar;
}

namespace detail {

inline Backend backend_from_env() {
  const char* raw = std::getenv("TRUSTDDL_SIMD");
  if (raw == nullptr || *raw == '\0' || std::strcmp(raw, "auto") == 0) {
    return detected_backend();
  }
  Backend wanted = Backend::kScalar;
  if (std::strcmp(raw, "avx2") == 0) {
    wanted = Backend::kAvx2;
  } else if (std::strcmp(raw, "neon") == 0) {
    wanted = Backend::kNeon;
  } else if (std::strcmp(raw, "scalar") != 0) {
    std::fprintf(stderr,
                 "trustddl: unknown TRUSTDDL_SIMD=%s (want "
                 "auto|scalar|avx2|neon), using auto\n",
                 raw);
    return detected_backend();
  }
  if (!cpu_supports(wanted)) {
    std::fprintf(stderr,
                 "trustddl: TRUSTDDL_SIMD=%s unsupported on this CPU, "
                 "falling back to %s\n",
                 raw, backend_name(detected_backend()));
    return detected_backend();
  }
  return wanted;
}

}  // namespace detail

/// The backend every primitive dispatches on: force_backend override,
/// else TRUSTDDL_SIMD, else runtime detection.  One relaxed atomic
/// load on the hot path.
inline Backend active_backend() {
  const int forced =
      detail::backend_override().load(std::memory_order_relaxed);
  if (forced >= 0) {
    return static_cast<Backend>(forced);
  }
  static const Backend from_env = detail::backend_from_env();
  return from_env;
}

/// Test hook: pin the backend for the whole process (ignored if the
/// CPU cannot run it — returns false in that case).  clear with
/// clear_forced_backend().
inline bool force_backend(Backend backend) {
  if (!cpu_supports(backend)) {
    return false;
  }
  detail::backend_override().store(static_cast<int>(backend),
                                   std::memory_order_relaxed);
  return true;
}

inline void clear_forced_backend() {
  detail::backend_override().store(-1, std::memory_order_relaxed);
}

// --- Vectorized primitives (defined in simd.cpp) --------------------
//
// All pointers may be unaligned; `dst` may alias `a` exactly (the
// in-place tensor operators rely on that).  Ring ops are exact mod
// 2^64; tails (n % lanes) run the scalar loop.

/// dst[i] = a[i] + b[i]
void ring_add(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, std::size_t n);
/// dst[i] = a[i] - b[i]
void ring_sub(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, std::size_t n);
/// dst[i] = a[i] * b[i]  (elementwise / hadamard)
void ring_mul(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, std::size_t n);
/// dst[i] = a[i] * factor
void ring_scale(std::uint64_t* dst, const std::uint64_t* a,
                std::uint64_t factor, std::size_t n);
/// c[i] += a * b[i]  — the matmul inner kernel (naive and blocked)
void ring_axpy(std::uint64_t* c, std::uint64_t a, const std::uint64_t* b,
               std::size_t n);
/// dst[i] = (int64_t)a[i] >> frac_bits  (fixed-point truncation;
/// 0 <= frac_bits < 64)
void ring_truncate(std::uint64_t* dst, const std::uint64_t* a, int frac_bits,
                   std::size_t n);

/// c[i] += a * b[i] with separate multiply and add (no FMA) — bitwise
/// equal to the scalar loop at any lane width.
void real_axpy(double* c, double a, const double* b, std::size_t n);
/// dst[i] = a[i] * b[i]
void real_mul(double* dst, const double* a, const double* b, std::size_t n);

}  // namespace trustddl::simd
