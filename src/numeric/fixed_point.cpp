#include "numeric/fixed_point.hpp"

#include <cmath>

#include "common/error.hpp"

namespace trustddl::fx {

std::uint64_t encode(double value, int frac_bits) {
  TRUSTDDL_ASSERT(frac_bits >= 0 && frac_bits < 63);
  const double scaled = value * std::ldexp(1.0, frac_bits);
  // Reduce into [-2^63, 2^63) so the signed cast is well defined;
  // out-of-range values wrap exactly as ring arithmetic would.
  const double two63 = std::ldexp(1.0, 63);
  const double two64 = std::ldexp(1.0, 64);
  double reduced = std::fmod(scaled, two64);
  if (reduced >= two63) {
    reduced -= two64;
  } else if (reduced < -two63) {
    reduced += two64;
  }
  if (reduced >= two63) {  // guard the exact-boundary rounding case
    reduced = std::nextafter(two63, 0.0);
  }
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::llrint(reduced)));
}

double decode(std::uint64_t encoded, int frac_bits) {
  TRUSTDDL_ASSERT(frac_bits >= 0 && frac_bits < 63);
  return static_cast<double>(static_cast<std::int64_t>(encoded)) *
         std::ldexp(1.0, -frac_bits);
}

std::uint64_t mul(std::uint64_t a, std::uint64_t b, int frac_bits) {
  const __int128 product = static_cast<__int128>(static_cast<std::int64_t>(a)) *
                           static_cast<__int128>(static_cast<std::int64_t>(b));
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(product >> frac_bits));
}

std::uint64_t truncate(std::uint64_t value, int frac_bits) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(value) >>
                                    frac_bits);
}

std::uint64_t ring_distance(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t forward = a - b;
  const std::uint64_t backward = b - a;
  return forward < backward ? forward : backward;
}

int sign(std::uint64_t value) {
  const auto signed_value = static_cast<std::int64_t>(value);
  if (signed_value > 0) {
    return 1;
  }
  if (signed_value < 0) {
    return -1;
  }
  return 0;
}

double max_representable(int frac_bits) {
  return std::ldexp(1.0, 63 - frac_bits);
}

double epsilon(int frac_bits) { return std::ldexp(1.0, -frac_bits - 1); }

}  // namespace trustddl::fx
