// Tensor serialization for network messages and commitment hashing.
#pragma once

#include "common/bytes.hpp"
#include "numeric/tensor.hpp"

namespace trustddl {

/// Append a ring tensor (shape + elements) to a writer.
void write_tensor(ByteWriter& writer, const RingTensor& tensor);

/// Read a ring tensor previously written with write_tensor.
RingTensor read_tensor(ByteReader& reader);

/// Serialize a ring tensor to a standalone byte vector.
Bytes tensor_to_bytes(const RingTensor& tensor);

/// Deserialize a standalone byte vector back into a ring tensor.
RingTensor tensor_from_bytes(const Bytes& data);

/// Append a real tensor (shape + IEEE-754 elements) to a writer.
void write_real_tensor(ByteWriter& writer, const RealTensor& tensor);

/// Read a real tensor previously written with write_real_tensor.
RealTensor read_real_tensor(ByteReader& reader);

}  // namespace trustddl
