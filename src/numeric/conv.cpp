#include "numeric/conv.hpp"

namespace trustddl {

template <typename T>
Tensor<T> im2col(const Tensor<T>& image, const ConvSpec& spec) {
  TRUSTDDL_REQUIRE(
      image.size() == spec.in_channels * spec.in_height * spec.in_width,
      "im2col: image size does not match ConvSpec");
  const std::size_t out_h = spec.out_height();
  const std::size_t out_w = spec.out_width();
  Tensor<T> columns(Shape{spec.col_rows(), spec.col_cols()});

  const T* src = image.data();
  for (std::size_t channel = 0; channel < spec.in_channels; ++channel) {
    for (std::size_t ky = 0; ky < spec.kernel_h; ++ky) {
      for (std::size_t kx = 0; kx < spec.kernel_w; ++kx) {
        const std::size_t row =
            (channel * spec.kernel_h + ky) * spec.kernel_w + kx;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t in_y =
              static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
              static_cast<std::ptrdiff_t>(spec.pad);
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t in_x =
                static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                static_cast<std::ptrdiff_t>(spec.pad);
            T value = T{};
            if (in_y >= 0 && in_y < static_cast<std::ptrdiff_t>(spec.in_height) &&
                in_x >= 0 && in_x < static_cast<std::ptrdiff_t>(spec.in_width)) {
              value = src[(channel * spec.in_height +
                           static_cast<std::size_t>(in_y)) *
                              spec.in_width +
                          static_cast<std::size_t>(in_x)];
            }
            columns.at(row, oy * out_w + ox) = value;
          }
        }
      }
    }
  }
  return columns;
}

template <typename T>
Tensor<T> col2im(const Tensor<T>& columns, const ConvSpec& spec) {
  TRUSTDDL_REQUIRE(columns.rank() == 2 && columns.rows() == spec.col_rows() &&
                       columns.cols() == spec.col_cols(),
                   "col2im: column shape does not match ConvSpec");
  const std::size_t out_h = spec.out_height();
  const std::size_t out_w = spec.out_width();
  Tensor<T> image(Shape{spec.in_channels, spec.in_height, spec.in_width});

  T* dst = image.data();
  for (std::size_t channel = 0; channel < spec.in_channels; ++channel) {
    for (std::size_t ky = 0; ky < spec.kernel_h; ++ky) {
      for (std::size_t kx = 0; kx < spec.kernel_w; ++kx) {
        const std::size_t row =
            (channel * spec.kernel_h + ky) * spec.kernel_w + kx;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t in_y =
              static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
              static_cast<std::ptrdiff_t>(spec.pad);
          if (in_y < 0 || in_y >= static_cast<std::ptrdiff_t>(spec.in_height)) {
            continue;
          }
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t in_x =
                static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                static_cast<std::ptrdiff_t>(spec.pad);
            if (in_x < 0 ||
                in_x >= static_cast<std::ptrdiff_t>(spec.in_width)) {
              continue;
            }
            dst[(channel * spec.in_height + static_cast<std::size_t>(in_y)) *
                    spec.in_width +
                static_cast<std::size_t>(in_x)] +=
                columns.at(row, oy * out_w + ox);
          }
        }
      }
    }
  }
  return image;
}

template <typename T>
Tensor<T> batch_im2col(const Tensor<T>& input, const ConvSpec& spec) {
  const std::size_t batch = input.rows();
  const std::size_t pixels = spec.col_cols();
  const std::size_t k = spec.col_rows();
  Tensor<T> columns(Shape{k, batch * pixels});
  for (std::size_t sample = 0; sample < batch; ++sample) {
    Tensor<T> image(Shape{input.cols()});
    for (std::size_t i = 0; i < input.cols(); ++i) {
      image[i] = input.at(sample, i);
    }
    const Tensor<T> sample_cols = im2col(image, spec);
    for (std::size_t row = 0; row < k; ++row) {
      for (std::size_t pixel = 0; pixel < pixels; ++pixel) {
        columns.at(row, sample * pixels + pixel) = sample_cols.at(row, pixel);
      }
    }
  }
  return columns;
}

template <typename T>
Tensor<T> batch_col2im(const Tensor<T>& columns, const ConvSpec& spec,
                       std::size_t batch) {
  const std::size_t pixels = spec.col_cols();
  const std::size_t in_size =
      spec.in_channels * spec.in_height * spec.in_width;
  Tensor<T> input(Shape{batch, in_size});
  for (std::size_t sample = 0; sample < batch; ++sample) {
    Tensor<T> sample_cols(Shape{spec.col_rows(), pixels});
    for (std::size_t row = 0; row < spec.col_rows(); ++row) {
      for (std::size_t pixel = 0; pixel < pixels; ++pixel) {
        sample_cols.at(row, pixel) = columns.at(row, sample * pixels + pixel);
      }
    }
    const Tensor<T> image = col2im(sample_cols, spec);
    for (std::size_t i = 0; i < in_size; ++i) {
      input.at(sample, i) = image[i];
    }
  }
  return input;
}

template <typename T>
Tensor<T> maps_to_rows(const Tensor<T>& maps, std::size_t batch,
                       std::size_t pixels) {
  const std::size_t channels = maps.rows();
  Tensor<T> rows(Shape{batch, channels * pixels});
  for (std::size_t channel = 0; channel < channels; ++channel) {
    for (std::size_t sample = 0; sample < batch; ++sample) {
      for (std::size_t pixel = 0; pixel < pixels; ++pixel) {
        rows.at(sample, channel * pixels + pixel) =
            maps.at(channel, sample * pixels + pixel);
      }
    }
  }
  return rows;
}

template <typename T>
Tensor<T> rows_to_maps(const Tensor<T>& rows, std::size_t channels,
                       std::size_t pixels) {
  const std::size_t batch = rows.rows();
  Tensor<T> maps(Shape{channels, batch * pixels});
  for (std::size_t channel = 0; channel < channels; ++channel) {
    for (std::size_t sample = 0; sample < batch; ++sample) {
      for (std::size_t pixel = 0; pixel < pixels; ++pixel) {
        maps.at(channel, sample * pixels + pixel) =
            rows.at(sample, channel * pixels + pixel);
      }
    }
  }
  return maps;
}

template <typename T>
Tensor<T> sum_cols(const Tensor<T>& matrix) {
  Tensor<T> out(Shape{matrix.rows()});
  for (std::size_t row = 0; row < matrix.rows(); ++row) {
    T total{};
    for (std::size_t col = 0; col < matrix.cols(); ++col) {
      total += matrix.at(row, col);
    }
    out[row] = total;
  }
  return out;
}

template Tensor<double> im2col(const Tensor<double>&, const ConvSpec&);
template Tensor<std::uint64_t> im2col(const Tensor<std::uint64_t>&,
                                      const ConvSpec&);
template Tensor<double> col2im(const Tensor<double>&, const ConvSpec&);
template Tensor<std::uint64_t> col2im(const Tensor<std::uint64_t>&,
                                      const ConvSpec&);
template Tensor<double> batch_im2col(const Tensor<double>&, const ConvSpec&);
template Tensor<std::uint64_t> batch_im2col(const Tensor<std::uint64_t>&,
                                            const ConvSpec&);
template Tensor<double> batch_col2im(const Tensor<double>&, const ConvSpec&,
                                     std::size_t);
template Tensor<std::uint64_t> batch_col2im(const Tensor<std::uint64_t>&,
                                            const ConvSpec&, std::size_t);
template Tensor<double> maps_to_rows(const Tensor<double>&, std::size_t,
                                     std::size_t);
template Tensor<std::uint64_t> maps_to_rows(const Tensor<std::uint64_t>&,
                                            std::size_t, std::size_t);
template Tensor<double> rows_to_maps(const Tensor<double>&, std::size_t,
                                     std::size_t);
template Tensor<std::uint64_t> rows_to_maps(const Tensor<std::uint64_t>&,
                                            std::size_t, std::size_t);
template Tensor<double> sum_cols(const Tensor<double>&);
template Tensor<std::uint64_t> sum_cols(const Tensor<std::uint64_t>&);

}  // namespace trustddl
