#include "numeric/conv.hpp"

#include "numeric/kernels.hpp"

namespace trustddl {
namespace {

/// im2col for one image into a slice of a (possibly batched) column
/// matrix: writes rows [row_lo, row_hi) of the patch matrix at column
/// offset `col0`, where the destination has `dst_cols` columns per
/// row.  Each (channel, ky, kx) row is independent, so callers can
/// partition rows freely.
template <typename T>
void im2col_rows(const T* src, const ConvSpec& spec, T* dst,
                 std::size_t dst_cols, std::size_t col0, std::size_t row_lo,
                 std::size_t row_hi) {
  const std::size_t out_h = spec.out_height();
  const std::size_t out_w = spec.out_width();
  for (std::size_t row = row_lo; row < row_hi; ++row) {
    const std::size_t kx = row % spec.kernel_w;
    const std::size_t ky = (row / spec.kernel_w) % spec.kernel_h;
    const std::size_t channel = row / (spec.kernel_w * spec.kernel_h);
    const T* plane = src + channel * spec.in_height * spec.in_width;
    T* out_row = dst + row * dst_cols + col0;
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      const std::ptrdiff_t in_y =
          static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
          static_cast<std::ptrdiff_t>(spec.pad);
      T* out = out_row + oy * out_w;
      if (in_y < 0 || in_y >= static_cast<std::ptrdiff_t>(spec.in_height)) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
          out[ox] = T{};
        }
        continue;
      }
      const T* in_row =
          plane + static_cast<std::size_t>(in_y) * spec.in_width;
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        const std::ptrdiff_t in_x =
            static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
            static_cast<std::ptrdiff_t>(spec.pad);
        out[ox] =
            (in_x >= 0 && in_x < static_cast<std::ptrdiff_t>(spec.in_width))
                ? in_row[static_cast<std::size_t>(in_x)]
                : T{};
      }
    }
  }
}

/// col2im for the patch rows of channels [ch_lo, ch_hi): accumulates
/// into the corresponding image planes.  Rows belonging to different
/// channels touch disjoint planes, so channel ranges parallelise; the
/// ky/kx/oy/ox order within a channel matches the serial loop, keeping
/// double accumulation deterministic.
template <typename T>
void col2im_channels(const T* columns, std::size_t src_cols, std::size_t col0,
                     const ConvSpec& spec, T* dst, std::size_t ch_lo,
                     std::size_t ch_hi) {
  const std::size_t out_h = spec.out_height();
  const std::size_t out_w = spec.out_width();
  for (std::size_t channel = ch_lo; channel < ch_hi; ++channel) {
    T* plane = dst + channel * spec.in_height * spec.in_width;
    for (std::size_t ky = 0; ky < spec.kernel_h; ++ky) {
      for (std::size_t kx = 0; kx < spec.kernel_w; ++kx) {
        const std::size_t row =
            (channel * spec.kernel_h + ky) * spec.kernel_w + kx;
        const T* in_row = columns + row * src_cols + col0;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t in_y =
              static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
              static_cast<std::ptrdiff_t>(spec.pad);
          if (in_y < 0 ||
              in_y >= static_cast<std::ptrdiff_t>(spec.in_height)) {
            continue;
          }
          T* img_row =
              plane + static_cast<std::size_t>(in_y) * spec.in_width;
          const T* in = in_row + oy * out_w;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t in_x =
                static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                static_cast<std::ptrdiff_t>(spec.pad);
            if (in_x >= 0 &&
                in_x < static_cast<std::ptrdiff_t>(spec.in_width)) {
              img_row[static_cast<std::size_t>(in_x)] += in[ox];
            }
          }
        }
      }
    }
  }
}

}  // namespace

template <typename T>
Tensor<T> im2col(const Tensor<T>& image, const ConvSpec& spec) {
  TRUSTDDL_REQUIRE(
      image.size() == spec.in_channels * spec.in_height * spec.in_width,
      "im2col: image size does not match ConvSpec");
  Tensor<T> columns(Shape{spec.col_rows(), spec.col_cols()});
  const std::size_t per_row = spec.col_cols();
  kernels::parallel_for(spec.col_rows(),
                        std::max<std::size_t>(1, 4096 / std::max<std::size_t>(per_row, 1)),
                        [&](std::size_t lo, std::size_t hi) {
                          im2col_rows(image.data(), spec, columns.data(),
                                      spec.col_cols(), 0, lo, hi);
                        });
  return columns;
}

template <typename T>
Tensor<T> col2im(const Tensor<T>& columns, const ConvSpec& spec) {
  TRUSTDDL_REQUIRE(columns.rank() == 2 && columns.rows() == spec.col_rows() &&
                       columns.cols() == spec.col_cols(),
                   "col2im: column shape does not match ConvSpec");
  Tensor<T> image(Shape{spec.in_channels, spec.in_height, spec.in_width});
  kernels::parallel_for(spec.in_channels, 1,
                        [&](std::size_t lo, std::size_t hi) {
                          col2im_channels(columns.data(), spec.col_cols(), 0,
                                          spec, image.data(), lo, hi);
                        });
  return image;
}

template <typename T>
Tensor<T> batch_im2col(const Tensor<T>& input, const ConvSpec& spec) {
  const std::size_t batch = input.rows();
  const std::size_t pixels = spec.col_cols();
  const std::size_t k = spec.col_rows();
  Tensor<T> columns(Shape{k, batch * pixels});
  const T* src = input.data();
  T* dst = columns.data();
  const std::size_t in_size = input.cols();
  // Each sample owns a disjoint column slice [sample*pixels, ...).
  kernels::parallel_for(batch, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t sample = lo; sample < hi; ++sample) {
      im2col_rows(src + sample * in_size, spec, dst, batch * pixels,
                  sample * pixels, 0, k);
    }
  });
  return columns;
}

template <typename T>
Tensor<T> batch_col2im(const Tensor<T>& columns, const ConvSpec& spec,
                       std::size_t batch) {
  const std::size_t pixels = spec.col_cols();
  const std::size_t in_size =
      spec.in_channels * spec.in_height * spec.in_width;
  Tensor<T> input(Shape{batch, in_size});
  const T* src = columns.data();
  T* dst = input.data();
  kernels::parallel_for(batch, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t sample = lo; sample < hi; ++sample) {
      col2im_channels(src, batch * pixels, sample * pixels, spec,
                      dst + sample * in_size, 0, spec.in_channels);
    }
  });
  return input;
}

template <typename T>
Tensor<T> maps_to_rows(const Tensor<T>& maps, std::size_t batch,
                       std::size_t pixels) {
  const std::size_t channels = maps.rows();
  Tensor<T> rows(Shape{batch, channels * pixels});
  const T* src = maps.data();
  T* dst = rows.data();
  kernels::parallel_for(batch, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t sample = lo; sample < hi; ++sample) {
      T* out_row = dst + sample * channels * pixels;
      for (std::size_t channel = 0; channel < channels; ++channel) {
        const T* in = src + channel * batch * pixels + sample * pixels;
        T* out = out_row + channel * pixels;
        for (std::size_t pixel = 0; pixel < pixels; ++pixel) {
          out[pixel] = in[pixel];
        }
      }
    }
  });
  return rows;
}

template <typename T>
Tensor<T> rows_to_maps(const Tensor<T>& rows, std::size_t channels,
                       std::size_t pixels) {
  const std::size_t batch = rows.rows();
  Tensor<T> maps(Shape{channels, batch * pixels});
  const T* src = rows.data();
  T* dst = maps.data();
  kernels::parallel_for(batch, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t sample = lo; sample < hi; ++sample) {
      const T* in_row = src + sample * channels * pixels;
      for (std::size_t channel = 0; channel < channels; ++channel) {
        const T* in = in_row + channel * pixels;
        T* out = dst + channel * batch * pixels + sample * pixels;
        for (std::size_t pixel = 0; pixel < pixels; ++pixel) {
          out[pixel] = in[pixel];
        }
      }
    }
  });
  return maps;
}

template <typename T>
Tensor<T> sum_cols(const Tensor<T>& matrix) {
  const std::size_t rows = matrix.rows();
  const std::size_t cols = matrix.cols();
  Tensor<T> out(Shape{rows});
  const T* src = matrix.data();
  T* dst = out.data();
  // Row-major walk; each output row is owned by one chunk and summed
  // in ascending column order (same as serial).
  kernels::parallel_for(
      rows, std::max<std::size_t>(1, 4096 / std::max<std::size_t>(cols, 1)),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t row = lo; row < hi; ++row) {
          const T* in = src + row * cols;
          T total{};
          for (std::size_t col = 0; col < cols; ++col) {
            total += in[col];
          }
          dst[row] = total;
        }
      });
  return out;
}

template Tensor<double> im2col(const Tensor<double>&, const ConvSpec&);
template Tensor<std::uint64_t> im2col(const Tensor<std::uint64_t>&,
                                      const ConvSpec&);
template Tensor<double> col2im(const Tensor<double>&, const ConvSpec&);
template Tensor<std::uint64_t> col2im(const Tensor<std::uint64_t>&,
                                      const ConvSpec&);
template Tensor<double> batch_im2col(const Tensor<double>&, const ConvSpec&);
template Tensor<std::uint64_t> batch_im2col(const Tensor<std::uint64_t>&,
                                            const ConvSpec&);
template Tensor<double> batch_col2im(const Tensor<double>&, const ConvSpec&,
                                     std::size_t);
template Tensor<std::uint64_t> batch_col2im(const Tensor<std::uint64_t>&,
                                            const ConvSpec&, std::size_t);
template Tensor<double> maps_to_rows(const Tensor<double>&, std::size_t,
                                     std::size_t);
template Tensor<std::uint64_t> maps_to_rows(const Tensor<std::uint64_t>&,
                                            std::size_t, std::size_t);
template Tensor<double> rows_to_maps(const Tensor<double>&, std::size_t,
                                     std::size_t);
template Tensor<std::uint64_t> rows_to_maps(const Tensor<std::uint64_t>&,
                                            std::size_t, std::size_t);
template Tensor<double> sum_cols(const Tensor<double>&);
template Tensor<std::uint64_t> sum_cols(const Tensor<std::uint64_t>&);

}  // namespace trustddl
