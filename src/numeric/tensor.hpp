// Dense row-major tensor used across the plaintext DL engine
// (Tensor<double>) and the MPC share layer (Tensor<std::uint64_t>,
// whose unsigned arithmetic wraps and therefore implements the ring
// Z_{2^64} directly).
//
// The class is a value type (copyable, movable); all arithmetic is
// elementwise with exact shape matching — there is no implicit
// broadcasting, matching the explicit style of the paper's protocols.
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "numeric/aligned.hpp"
#include "numeric/simd.hpp"

namespace trustddl {

using Shape = std::vector<std::size_t>;

/// Human-readable "[a, b, c]" form of a shape, for error messages.
std::string shape_to_string(const Shape& shape);

/// Number of elements a shape describes.
std::size_t shape_size(const Shape& shape);

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(shape_size(shape_), T{}) {}

  Tensor(Shape shape, AlignedVector<T> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    TRUSTDDL_REQUIRE(data_.size() == shape_size(shape_),
                     "tensor data size does not match shape " +
                         shape_to_string(shape_));
  }

  /// Convenience overloads (initializer lists, plain vectors); copy
  /// the elements into cache-line-aligned storage.
  Tensor(Shape shape, std::initializer_list<T> data)
      : Tensor(std::move(shape), AlignedVector<T>(data.begin(), data.end())) {}
  Tensor(Shape shape, const std::vector<T>& data)
      : Tensor(std::move(shape), AlignedVector<T>(data.begin(), data.end())) {}

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }

  static Tensor full(Shape shape, T value) {
    Tensor out(std::move(shape));
    for (auto& element : out.data_) {
      element = value;
    }
    return out;
  }

  /// 2-D convenience constructor.
  static Tensor matrix(std::size_t rows, std::size_t cols) {
    return Tensor(Shape{rows, cols});
  }

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::size_t dim(std::size_t axis) const {
    TRUSTDDL_ASSERT(axis < shape_.size());
    return shape_[axis];
  }

  /// Rows/cols accessors valid for rank-2 tensors.
  std::size_t rows() const {
    TRUSTDDL_ASSERT(rank() == 2);
    return shape_[0];
  }
  std::size_t cols() const {
    TRUSTDDL_ASSERT(rank() == 2);
    return shape_[1];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  AlignedVector<T>& values() { return data_; }
  const AlignedVector<T>& values() const { return data_; }

  T& operator[](std::size_t index) {
    TRUSTDDL_ASSERT(index < data_.size());
    return data_[index];
  }
  const T& operator[](std::size_t index) const {
    TRUSTDDL_ASSERT(index < data_.size());
    return data_[index];
  }

  /// 2-D element access.
  T& at(std::size_t row, std::size_t col) {
    TRUSTDDL_ASSERT(rank() == 2 && row < shape_[0] && col < shape_[1]);
    return data_[row * shape_[1] + col];
  }
  const T& at(std::size_t row, std::size_t col) const {
    TRUSTDDL_ASSERT(rank() == 2 && row < shape_[0] && col < shape_[1]);
    return data_[row * shape_[1] + col];
  }

  /// Same data, new shape (sizes must agree).
  Tensor reshape(Shape new_shape) const {
    TRUSTDDL_REQUIRE(shape_size(new_shape) == data_.size(),
                     "reshape from " + shape_to_string(shape_) + " to " +
                         shape_to_string(new_shape) + " changes size");
    return Tensor(std::move(new_shape), data_);
  }

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  // The ring (u64) elementwise ops route through the SIMD layer —
  // bit-identical to these loops at every backend (exact mod 2^64).
  // Double tensors keep the plain loops: the compiler vectorizes them
  // and the SIMD layer only guarantees no-FMA for its own kernels.
  Tensor& operator+=(const Tensor& other) {
    check_same_shape(other, "+=");
    if constexpr (std::is_same_v<T, std::uint64_t>) {
      simd::ring_add(data_.data(), data_.data(), other.data_.data(),
                     data_.size());
    } else {
      for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += other.data_[i];
      }
    }
    return *this;
  }

  Tensor& operator-=(const Tensor& other) {
    check_same_shape(other, "-=");
    if constexpr (std::is_same_v<T, std::uint64_t>) {
      simd::ring_sub(data_.data(), data_.data(), other.data_.data(),
                     data_.size());
    } else {
      for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] -= other.data_[i];
      }
    }
    return *this;
  }

  friend Tensor operator+(Tensor lhs, const Tensor& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend Tensor operator-(Tensor lhs, const Tensor& rhs) {
    lhs -= rhs;
    return lhs;
  }

  Tensor operator-() const {
    Tensor out(*this);
    for (auto& element : out.data_) {
      element = static_cast<T>(T{} - element);
    }
    return out;
  }

  /// Elementwise product with another tensor.
  Tensor& hadamard_inplace(const Tensor& other) {
    check_same_shape(other, "hadamard");
    if constexpr (std::is_same_v<T, std::uint64_t>) {
      simd::ring_mul(data_.data(), data_.data(), other.data_.data(),
                     data_.size());
    } else {
      for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] *= other.data_[i];
      }
    }
    return *this;
  }

  /// Multiply every element by a scalar.
  Tensor& scale_inplace(T factor) {
    if constexpr (std::is_same_v<T, std::uint64_t>) {
      simd::ring_scale(data_.data(), data_.data(), factor, data_.size());
    } else {
      for (auto& element : data_) {
        element *= factor;
      }
    }
    return *this;
  }

  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }
  bool operator!=(const Tensor& other) const { return !(*this == other); }

 private:
  void check_same_shape(const Tensor& other, const char* op) const {
    TRUSTDDL_REQUIRE(shape_ == other.shape_,
                     std::string("shape mismatch in ") + op + ": " +
                         shape_to_string(shape_) + " vs " +
                         shape_to_string(other.shape_));
  }

  Shape shape_;
  AlignedVector<T> data_;
};

using RealTensor = Tensor<double>;
using RingTensor = Tensor<std::uint64_t>;

/// Elementwise product (out-of-place).
template <typename T>
Tensor<T> hadamard(Tensor<T> lhs, const Tensor<T>& rhs) {
  lhs.hadamard_inplace(rhs);
  return lhs;
}

/// Scalar product (out-of-place).
template <typename T>
Tensor<T> scale(Tensor<T> tensor, T factor) {
  tensor.scale_inplace(factor);
  return tensor;
}

/// Rank-2 matrix product.  For RingTensor the wrap-around arithmetic
/// of unsigned integers gives the Z_{2^64} semantics required by the
/// secret-sharing protocols.
template <typename T>
Tensor<T> matmul(const Tensor<T>& lhs, const Tensor<T>& rhs);

/// Rank-2 transpose.
template <typename T>
Tensor<T> transpose(const Tensor<T>& input);

/// Sum of all elements.
template <typename T>
T sum(const Tensor<T>& tensor) {
  return std::accumulate(tensor.values().begin(), tensor.values().end(), T{});
}

/// Column sums of a rank-2 tensor (result shape [1, cols]); used for
/// bias gradients.
template <typename T>
Tensor<T> sum_rows(const Tensor<T>& tensor);

/// Index of the maximum element of a rank-1 or flattened tensor.
std::size_t argmax(const RealTensor& tensor);

/// Conversions between real tensors and fixed-point ring tensors.
RingTensor to_ring(const RealTensor& real, int frac_bits);
RealTensor to_real(const RingTensor& ring, int frac_bits);

/// Arithmetic right shift of every element in the signed
/// interpretation; rescales after fixed-point multiplication.
RingTensor truncate(const RingTensor& ring, int frac_bits);

/// Elementwise maximum absolute ring distance between two tensors —
/// the `dist` measure of the Byzantine decision rule.
std::uint64_t ring_distance(const RingTensor& lhs, const RingTensor& rhs);

/// Maximum elementwise |lhs - rhs| for real tensors (test helper).
double max_abs_diff(const RealTensor& lhs, const RealTensor& rhs);

}  // namespace trustddl
