#!/usr/bin/env python3
"""Perf regression gate over bench_kernels JSON snapshots.

Compares a fresh ``bench_kernels --json`` run (the candidate) against
the committed ``BENCH_kernels.json`` (the baseline) and fails on

* a median regression of more than ``--tolerance`` (default 10%), or
* a flaky candidate measurement (CV above ``--max-cv``, default 0.15).

Absolute seconds are not comparable across machines (the committed
snapshot and a CI runner differ in clocks, steal time and cache
sizes), so medians are compared in *normalized* form: every variant's
median is divided by the same run's scalar-naive median for that shape
and domain before the two runs are compared.  The normalized ratio
says "how much faster than the untuned baseline is this kernel on this
machine", which is the property the SIMD/dispatch work claims and the
one that must not regress.  Micro-kernel rows already carry an in-run
speedup and are compared directly (only when both runs used the same
SIMD backend — a scalar-only host cannot regress an AVX2 claim).

Stdlib only; exits non-zero on any violation.

Usage:
    scripts/check_bench.py BENCH_kernels.json candidate.json \
        [--tolerance 0.10] [--max-cv 0.15]
"""

import argparse
import json
import sys

FORMAT = "trustddl.bench_kernels.v2"
REFERENCE_VARIANT = "naive_scalar_1t"


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("format") != FORMAT:
        raise SystemExit(f"{path}: expected format {FORMAT!r}, "
                         f"got {data.get('format')!r}")
    return data


def indexed_shapes(data):
    return {shape["name"]: shape for shape in data.get("shapes", [])}


def indexed_micro(data):
    return {row["name"]: row for row in data.get("micro", [])}


def iter_stat_blocks(data):
    """Yield (label, stats-dict) for every non-null measurement."""
    for shape in data.get("shapes", []):
        for domain in ("ring", "double"):
            for variant, stats in shape.get(domain, {}).items():
                if stats is not None:
                    yield f"{shape['name']}/{domain}/{variant}", stats
    for row in data.get("micro", []):
        for column in ("scalar", "simd"):
            stats = row.get(column)
            if stats is not None:
                yield f"micro/{row['name']}/{column}", stats


def normalized(shape, domain, variant):
    """Variant median over the same run's scalar-naive median."""
    block = shape.get(domain, {})
    stats = block.get(variant)
    reference = block.get(REFERENCE_VARIANT)
    if stats is None or reference is None:
        return None
    if reference["median_s"] <= 0:
        return None
    return stats["median_s"] / reference["median_s"]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_kernels.json")
    parser.add_argument("candidate", help="fresh bench_kernels --json output")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative median regression "
                             "(default 0.10)")
    parser.add_argument("--max-cv", type=float, default=0.15,
                        help="maximum coefficient of variation per "
                             "candidate measurement (default 0.15)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    failures = []
    checked = 0

    # Flakiness gate: an unstable measurement cannot prove anything.
    for label, stats in iter_stat_blocks(candidate):
        checked += 1
        if stats["cv"] > args.max_cv:
            failures.append(f"FLAKY {label}: cv={stats['cv']:.3f} > "
                            f"{args.max_cv:.2f}")

    # Normalized median regressions on the matmul shapes.
    base_shapes = indexed_shapes(baseline)
    for shape in candidate.get("shapes", []):
        base_shape = base_shapes.get(shape["name"])
        if base_shape is None:
            continue
        for domain in ("ring", "double"):
            for variant in shape.get(domain, {}):
                if variant == REFERENCE_VARIANT:
                    continue
                cand_ratio = normalized(shape, domain, variant)
                base_ratio = normalized(base_shape, domain, variant)
                if cand_ratio is None or base_ratio is None:
                    continue
                checked += 1
                if cand_ratio > base_ratio * (1.0 + args.tolerance):
                    failures.append(
                        f"REGRESSION {shape['name']}/{domain}/{variant}: "
                        f"normalized median {cand_ratio:.3f} vs baseline "
                        f"{base_ratio:.3f} (> +{args.tolerance:.0%})")

    # Micro-kernel speedups, only when the SIMD backend matches.
    same_backend = (baseline.get("simd_backend") ==
                    candidate.get("simd_backend"))
    if same_backend:
        base_micro = indexed_micro(baseline)
        for row in candidate.get("micro", []):
            base_row = base_micro.get(row["name"])
            if base_row is None:
                continue
            checked += 1
            cand = row["speedup_simd_vs_scalar"]
            base = base_row["speedup_simd_vs_scalar"]
            if cand < base * (1.0 - args.tolerance):
                failures.append(
                    f"REGRESSION micro/{row['name']}: speedup {cand:.2f}x "
                    f"vs baseline {base:.2f}x (> -{args.tolerance:.0%})")
    else:
        print(f"note: SIMD backend differs (baseline "
              f"{baseline.get('simd_backend')!r}, candidate "
              f"{candidate.get('simd_backend')!r}) — skipping micro "
              f"speedup comparison")

    for failure in failures:
        print(failure)
    verdict = "FAIL" if failures else "PASS"
    print(f"check_bench: {verdict} ({checked} comparisons, "
          f"{len(failures)} violation(s), tolerance {args.tolerance:.0%}, "
          f"max cv {args.max_cv:.2f})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
