#!/usr/bin/env python3
"""Validate a trustddl.metrics.v1 export (and optionally its trace).

Stdlib only — no jsonschema dependency.  Checks, against
docs/metrics.schema.json's contract:

  * the file parses and carries the v1 schema tag;
  * every required section and cost/traffic key is present with the
    right type;
  * histogram bounds are the power-of-four ladder with 16 buckets and
    bucket counts summing to `count`;
  * the link matrices are square and cell sums are >= the totals
    (receipt rows of remote transports may be included; the totals are
    sender-row-only, counting each message once);
  * the `net.sent.bytes.*` counter sum equals traffic.total_bytes
    (transport metering and the metrics registry agree);
  * detection-event consistency: events are well formed and the
    per-kind event counts match both the cost section and the
    `detect.<kind>` counters;
  * serving-ledger consistency (only when the export carries serve.*
    counters): every admitted request has exactly one outcome
    (admitted == completed + rejected + deadline_missed) and the
    serve.batch.rows histogram saw every dispatched batch
    (count == serve.batches);
  * triple-ledger consistency (only when the export carries triple.*
    counters, i.e. the run prefetched material): per kind,
    triple.produced.<kind> == triple.consumed.<kind> + the
    triple.store.depth.<kind> gauge — every dealt entry was either
    consumed online or is still buffered, none vanished;
  * training-ledger consistency (only when the export carries train.*
    counters, i.e. a --task train-serve run): gradient coordinates
    (submitted == aggregated + trimmed), owner submissions
    (admitted == consumed + discarded) and round slots
    (expected == included + dropped) all balance.

Introspection-plane checks (PR 9):

  * admin-ledger consistency (only when the export carries admin.*
    counters, i.e. the process served its --admin-port endpoint and
    was scraped): the admin.requests.* counters sum to >= 1 and
    admin.http.errors is present;
  * --scrape LIVE_JSON: LIVE_JSON is a mid-run GET /metrics snapshot
    of the SAME process that wrote METRICS_JSON.  Every live counter,
    histogram count/sum and gauge peak must be <= its exit-time value
    (monotonic sources can only grow), and the live document must pass
    all structural checks itself;
  * --pair PAIR_JSON: PAIR_JSON is a GET /metrics?format=pair body
    ({"export": ..., "prometheus": "..."}).  Both views are rendered
    from one registry snapshot, so every Prometheus sample must match
    the JSON export exactly: equal counter/gauge/peak values, equal
    cumulative histogram buckets, _count and _sum.  Processes started
    with --pod label their serve.* families with {pod="<name>"}; the
    check strips that label after verifying it only ever appears on
    serve.* families and names the same pod on every sample;
  * --healthz HEALTH_JSON: shape-checks a GET /healthz body (status /
    role / uptime_us / peers with ages).

Usage:
  check_metrics.py METRICS_JSON [--trace TRACE_JSONL]
      [--expect-events N] [--expect-suspect P] [--expect-phase PH]
      [--scrape LIVE_JSON] [--pair PAIR_JSON] [--healthz HEALTH_JSON]

Exit code 0 when every check passes; 1 with a message on stderr
otherwise.
"""
import argparse
import json
import sys

KINDS = {
    "commitment_violation": "commitment_violations",
    "distance_anomaly": "distance_anomalies",
    "share_auth_failure": "share_auth_failures",
}

COST_KEYS = [
    "wall_seconds", "total_bytes", "total_messages", "proxy_bytes",
    "owner_bytes", "commitment_violations", "distance_anomalies",
    "share_auth_failures", "recovered_opens", "opening_rounds",
    "values_opened",
]

EVENT_KEYS = ["party", "suspect", "step", "kind", "phase", "recovery"]


def fail(message):
    print("check_metrics: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def require(condition, message):
    if not condition:
        fail(message)


def check_metrics_section(metrics):
    for section in ("counters", "gauges", "histograms"):
        require(section in metrics, "metrics missing '%s'" % section)
    for name, value in metrics["counters"].items():
        require(isinstance(value, int) and value >= 0,
                "counter %r is not a non-negative integer" % name)
    for name, gauge in metrics["gauges"].items():
        require(set(gauge) == {"value", "peak"},
                "gauge %r keys %r" % (name, sorted(gauge)))
    for name, hist in metrics["histograms"].items():
        for key in ("count", "sum", "bounds", "buckets"):
            require(key in hist, "histogram %r missing '%s'" % (name, key))
        require(len(hist["buckets"]) == 16,
                "histogram %r has %d buckets" % (name, len(hist["buckets"])))
        require(hist["bounds"] == [4 ** i for i in range(15)],
                "histogram %r bounds are not the 4^i ladder" % name)
        require(sum(hist["buckets"]) == hist["count"],
                "histogram %r buckets sum %d != count %d"
                % (name, sum(hist["buckets"]), hist["count"]))


def check_traffic_section(traffic, counters):
    for key in ("total_bytes", "total_messages", "links_bytes",
                "links_messages"):
        require(key in traffic, "traffic missing '%s'" % key)
    for key in ("links_bytes", "links_messages"):
        matrix = traffic[key]
        require(len(matrix) > 0 and all(len(row) == len(matrix)
                                        for row in matrix),
                "traffic.%s is not a square matrix" % key)
    cell_bytes = sum(sum(row) for row in traffic["links_bytes"])
    cell_messages = sum(sum(row) for row in traffic["links_messages"])
    require(cell_bytes >= traffic["total_bytes"],
            "links_bytes cells %d < total_bytes %d"
            % (cell_bytes, traffic["total_bytes"]))
    require(cell_messages >= traffic["total_messages"],
            "links_messages cells %d < total_messages %d"
            % (cell_messages, traffic["total_messages"]))

    sent_bytes = sum(value for name, value in counters.items()
                     if name.startswith("net.sent.bytes."))
    require(sent_bytes == traffic["total_bytes"],
            "net.sent.bytes.* counter sum %d != traffic.total_bytes %d"
            % (sent_bytes, traffic["total_bytes"]))
    sent_messages = sum(value for name, value in counters.items()
                        if name.startswith("net.sent.messages."))
    require(sent_messages == traffic["total_messages"],
            "net.sent.messages.* counter sum %d != traffic.total_messages %d"
            % (sent_messages, traffic["total_messages"]))


def check_serve_section(metrics):
    """Serving request-ledger invariants, skipped for non-serving runs.

    The owner's scheduler assigns every admitted request exactly one
    terminal outcome, so the counters must balance; any imbalance means
    a request was dropped or double-counted.
    """
    counters = metrics["counters"]
    if "serve.requests.admitted" not in counters:
        return
    admitted = counters["serve.requests.admitted"]
    outcomes = (counters.get("serve.requests.completed", 0)
                + counters.get("serve.requests.rejected", 0)
                + counters.get("serve.requests.deadline_missed", 0))
    require(admitted == outcomes,
            "serve.requests.admitted %d != completed+rejected+"
            "deadline_missed %d" % (admitted, outcomes))
    batches = counters.get("serve.batches", 0)
    rows_hist = metrics["histograms"].get("serve.batch.rows")
    if rows_hist is not None:
        require(rows_hist["count"] == batches,
                "serve.batch.rows count %d != serve.batches %d"
                % (rows_hist["count"], batches))


def check_triple_section(metrics):
    """Preprocessing-ledger invariants, skipped for sync-dealing runs.

    The TripleStore counts every entry it deals (produced) and every
    entry the online phase pops (consumed); whatever remains buffered
    is the store-depth gauge.  An imbalance means material was dealt
    and lost, or served twice.
    """
    counters = metrics["counters"]
    if not any(name.startswith("triple.produced.") for name in counters):
        return
    for kind in ("mul", "matmul", "comp_aux", "trunc_pair"):
        produced = counters.get("triple.produced." + kind, 0)
        consumed = counters.get("triple.consumed." + kind, 0)
        depth_gauge = metrics["gauges"].get("triple.store.depth." + kind)
        in_store = depth_gauge["value"] if depth_gauge is not None else 0
        require(produced == consumed + in_store,
                "triple.produced.%s %d != consumed %d + in-store %d"
                % (kind, produced, consumed, in_store))


def check_train_section(metrics):
    """Training-ledger invariants, skipped for non-training runs.

    Three ledgers must balance: every per-owner gradient coordinate
    submitted to the robust aggregator was either averaged into the
    step or trimmed as an extreme; every owner submission the sequencer
    admitted was either consumed by a round manifest or discarded at
    shutdown/dormancy; and every owner slot of a cut round was either
    included or dropped (quorum operation past a dormant owner).
    """
    counters = metrics["counters"]
    if "train.agg.values.submitted" not in counters:
        return
    submitted = counters["train.agg.values.submitted"]
    placed = (counters.get("train.agg.values.aggregated", 0)
              + counters.get("train.agg.values.trimmed", 0))
    require(submitted == placed,
            "train.agg.values.submitted %d != aggregated+trimmed %d"
            % (submitted, placed))
    admitted = counters.get("train.owner.submissions.admitted", 0)
    settled = (counters.get("train.owner.submissions.consumed", 0)
               + counters.get("train.owner.submissions.discarded", 0))
    require(admitted == settled,
            "train.owner.submissions.admitted %d != consumed+discarded %d"
            % (admitted, settled))
    expected = counters.get("train.owner.slots.expected", 0)
    filled = (counters.get("train.owner.slots.included", 0)
              + counters.get("train.owner.slots.dropped", 0))
    require(expected == filled,
            "train.owner.slots.expected %d != included+dropped %d"
            % (expected, filled))
    rounds = counters.get("train.rounds", 0)
    owners_hist = metrics["histograms"].get("train.round.owners")
    if owners_hist is not None:
        require(owners_hist["count"] == rounds,
                "train.round.owners count %d != train.rounds %d"
                % (owners_hist["count"], rounds))


def check_admin_section(metrics):
    """Admin-endpoint ledger, skipped when no admin server ran.

    Each GET increments exactly one admin.requests.<endpoint> counter
    before the response snapshot is taken, so a scraped process always
    exports at least one admin request (its own scrape is visible).
    """
    counters = metrics["counters"]
    served = {name: value for name, value in counters.items()
              if name.startswith("admin.requests.")}
    if not served:
        return
    require(sum(served.values()) >= 1,
            "admin.requests.* present but sum to 0")
    for name, value in served.items():
        endpoint = name[len("admin.requests."):]
        require(endpoint in ("healthz", "metrics", "events", "status"),
                "unknown admin endpoint counter %r" % name)


def prometheus_name(name):
    """Mirror obs::prometheus_name: trustddl_ prefix, non-alnum -> _."""
    return "trustddl_" + "".join(
        ch if ch.isalnum() else "_" for ch in name)


def prometheus_samples(text):
    """Parse exposition text into {sample_name: [(labels, value)]}."""
    samples = {}
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        require(name_part and value_part,
                "prometheus line %d is not 'name value': %r"
                % (number, line))
        labels = ""
        name = name_part
        if "{" in name_part:
            name, _, rest = name_part.partition("{")
            labels = rest.rstrip("}")
        try:
            value = float(value_part)
        except ValueError:
            fail("prometheus line %d has non-numeric value %r"
                 % (number, value_part))
        samples.setdefault(name, []).append((labels, value))
    return samples


def split_pod(labels):
    """Strip a leading pod="..." label; returns (pod_or_None, rest).

    The admin server composes histogram bucket labels pod-then-le, so
    a pod label is always the first label when present.
    """
    if labels.startswith('pod="'):
        end = labels.index('"', len('pod="'))
        return labels[len('pod="'):end], labels[end + 1:].lstrip(",")
    return None, labels


def check_pair(path):
    """A ?format=pair body: prometheus text == JSON export, sample for
    sample.  Both views come from one snapshot, so any mismatch is a
    rendering bug, not scrape-time skew."""
    with open(path) as handle:
        pair = json.load(handle)
    for key in ("schema", "export", "prometheus"):
        require(key in pair, "pair document missing '%s'" % key)
    require(pair["schema"] == "trustddl.admin.pair.v1",
            "unknown pair schema %r" % pair["schema"])
    metrics = pair["export"]["metrics"]
    check_metrics_section(metrics)
    samples = prometheus_samples(pair["prometheus"])

    # A --pod process labels its serve.* families {pod="<name>"}; every
    # such sample must name the same pod, and no other family may carry
    # one.  `None` in the set marks an unlabeled serve sample, so a
    # half-labeled export also fails the <=1 check below.
    serve_pods = set()

    def family(name, prom):
        """Samples for one exported family, pod label verified/stripped."""
        stripped = []
        for labels, value in samples.get(prom, []):
            pod, rest = split_pod(labels)
            require(pod is None or name.startswith("serve."),
                    "non-serve sample %r carries pod=%r" % (prom, pod))
            if name.startswith("serve."):
                serve_pods.add(pod)
            stripped.append((rest, value))
        return stripped

    checked = 0
    for name, value in metrics["counters"].items():
        prom = prometheus_name(name)
        require(prom in samples, "counter %r missing from prometheus" % name)
        require(family(name, prom) == [("", float(value))],
                "counter %r: prometheus %r != export %d"
                % (name, samples[prom], value))
        checked += 1
    for name, gauge in metrics["gauges"].items():
        prom = prometheus_name(name)
        require(family(name, prom) == [("", float(gauge["value"]))],
                "gauge %r: prometheus %r != export %d"
                % (name, samples.get(prom), gauge["value"]))
        require(family(name, prom + "_peak")
                == [("", float(gauge["peak"]))],
                "gauge %r peak mismatch" % name)
        checked += 2
    for name, hist in metrics["histograms"].items():
        prom = prometheus_name(name)
        require(family(name, prom + "_count")
                == [("", float(hist["count"]))],
                "histogram %r count mismatch" % name)
        require(family(name, prom + "_sum") == [("", float(hist["sum"]))],
                "histogram %r sum mismatch" % name)
        buckets = family(name, prom + "_bucket")
        require(len(buckets) == 16,
                "histogram %r has %d prometheus buckets"
                % (name, len(buckets)))
        cumulative = 0
        for index, (labels, value) in enumerate(buckets):
            cumulative += hist["buckets"][index]
            expected_le = ("+Inf" if index == 15 else str(4 ** index))
            require(labels == 'le="%s"' % expected_le,
                    "histogram %r bucket %d labels %r"
                    % (name, index, labels))
            require(value == float(cumulative),
                    "histogram %r bucket le=%s: prometheus %g != "
                    "cumulative %d" % (name, expected_le, value, cumulative))
        checked += 18
    require(len(serve_pods) <= 1,
            "serve.* samples disagree on the pod label: %r"
            % sorted(str(pod) for pod in serve_pods))
    # Completeness the other way: no prometheus sample without a source.
    known = set()
    for name in metrics["counters"]:
        known.add(prometheus_name(name))
    for name in metrics["gauges"]:
        known.add(prometheus_name(name))
        known.add(prometheus_name(name) + "_peak")
    for name in metrics["histograms"]:
        prom = prometheus_name(name)
        known.update((prom + "_bucket", prom + "_count", prom + "_sum"))
    for prom in samples:
        require(prom in known,
                "prometheus sample %r has no source in the export" % prom)
    return checked


def check_scrape(live_path, exit_export):
    """A mid-run /metrics scrape vs the exit-time export: every
    monotonic source (counters, histogram count/sum/buckets, gauge
    peaks) may only have grown between the scrape and process exit."""
    with open(live_path) as handle:
        live = json.load(handle)
    require(live.get("schema") == "trustddl.metrics.v1",
            "live scrape schema %r" % live.get("schema"))
    check_metrics_section(live["metrics"])
    exit_metrics = exit_export["metrics"]

    checked = 0
    for name, value in live["metrics"]["counters"].items():
        final = exit_metrics["counters"].get(name)
        require(final is not None,
                "live counter %r absent from the exit export" % name)
        require(value <= final,
                "live counter %r %d > exit value %d" % (name, value, final))
        checked += 1
    for name, gauge in live["metrics"]["gauges"].items():
        final = exit_metrics["gauges"].get(name)
        require(final is not None,
                "live gauge %r absent from the exit export" % name)
        require(gauge["peak"] <= final["peak"],
                "live gauge %r peak %d > exit peak %d"
                % (name, gauge["peak"], final["peak"]))
        checked += 1
    for name, hist in live["metrics"]["histograms"].items():
        final = exit_metrics["histograms"].get(name)
        require(final is not None,
                "live histogram %r absent from the exit export" % name)
        require(hist["count"] <= final["count"],
                "live histogram %r count %d > exit count %d"
                % (name, hist["count"], final["count"]))
        require(hist["sum"] <= final["sum"],
                "live histogram %r sum %d > exit sum %d"
                % (name, hist["sum"], final["sum"]))
        for index in range(16):
            require(hist["buckets"][index] <= final["buckets"][index],
                    "live histogram %r bucket %d shrank" % (name, index))
        checked += 1
    return checked


def check_healthz(path):
    """Shape-check a GET /healthz body."""
    with open(path) as handle:
        health = json.load(handle)
    for key in ("status", "role", "task", "uptime_us", "stale_after_ms",
                "peers"):
        require(key in health, "healthz missing '%s'" % key)
    require(health["status"] in ("ok", "degraded"),
            "healthz status %r" % health["status"])
    require(isinstance(health["uptime_us"], int) and
            health["uptime_us"] >= 0, "healthz uptime_us is not a count")
    for index, peer in enumerate(health["peers"]):
        for key in ("peer", "last_seen_us", "age_us", "stale"):
            require(key in peer, "healthz peer %d missing '%s'"
                    % (index, key))
        require(isinstance(peer["stale"], bool),
                "healthz peer %d stale is not a bool" % index)
    stale = sum(1 for peer in health["peers"] if peer["stale"])
    require((health["status"] == "ok") == (stale == 0),
            "healthz status %r inconsistent with %d stale peers"
            % (health["status"], stale))
    return len(health["peers"])


def check_events_section(events, cost, counters, args):
    per_kind = {}
    for index, event in enumerate(events):
        for key in EVENT_KEYS:
            require(key in event, "event %d missing '%s'" % (index, key))
        require(event["party"] != event["suspect"],
                "event %d: observer accuses itself" % index)
        per_kind[event["kind"]] = per_kind.get(event["kind"], 0) + 1
        if args.expect_suspect is not None:
            require(event["suspect"] == args.expect_suspect,
                    "event %d suspect %d != expected %d"
                    % (index, event["suspect"], args.expect_suspect))
        if args.expect_phase is not None:
            require(event["phase"] == args.expect_phase,
                    "event %d phase %r != expected %r"
                    % (index, event["phase"], args.expect_phase))

    for kind, cost_key in KINDS.items():
        event_count = per_kind.get(kind, 0)
        require(event_count == cost[cost_key],
                "%d %s events != cost.%s %d"
                % (event_count, kind, cost_key, cost[cost_key]))
        counter = counters.get("detect." + kind, 0)
        require(event_count == counter,
                "%d %s events != detect.%s counter %d"
                % (event_count, kind, kind, counter))

    if args.expect_events is not None:
        require(len(events) == args.expect_events,
                "%d events != expected %d" % (len(events),
                                              args.expect_events))


def check_trace(path):
    spans = 0
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                fail("%s:%d is not valid JSON: %s" % (path, number, error))
            for key in ("kind", "name", "ts_us"):
                require(key in record, "%s:%d missing '%s'"
                        % (path, number, key))
            require(record["kind"] in ("span", "instant", "event", "meta"),
                    "%s:%d unknown kind %r" % (path, number, record["kind"]))
            spans += record["kind"] == "span"
    return spans


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="metrics export JSON path")
    parser.add_argument("--trace", help="optional trace JSONL to validate")
    parser.add_argument("--expect-events", type=int, default=None,
                        help="require exactly N detection events")
    parser.add_argument("--expect-suspect", type=int, default=None,
                        help="require every event to accuse this party")
    parser.add_argument("--expect-phase", default=None,
                        help="require every event in this phase")
    parser.add_argument("--scrape", default=None,
                        help="mid-run GET /metrics body of the same "
                             "process; checked monotone vs the export")
    parser.add_argument("--pair", default=None,
                        help="GET /metrics?format=pair body; prometheus "
                             "text checked sample-for-sample vs its export")
    parser.add_argument("--healthz", default=None,
                        help="GET /healthz body to shape-check")
    args = parser.parse_args()

    with open(args.metrics) as handle:
        try:
            export = json.load(handle)
        except json.JSONDecodeError as error:
            fail("%s is not valid JSON: %s" % (args.metrics, error))

    for section in ("schema", "metrics", "events", "traffic", "cost"):
        require(section in export, "missing top-level '%s'" % section)
    require(export["schema"] == "trustddl.metrics.v1",
            "unknown schema %r" % export["schema"])
    for key in COST_KEYS:
        require(key in export["cost"], "cost missing '%s'" % key)

    counters = export["metrics"]["counters"]
    check_metrics_section(export["metrics"])
    check_traffic_section(export["traffic"], counters)
    check_events_section(export["events"], export["cost"], counters, args)
    check_serve_section(export["metrics"])
    check_triple_section(export["metrics"])
    check_train_section(export["metrics"])
    check_admin_section(export["metrics"])

    summary = ("check_metrics: OK: %d counters, %d events, "
               "%d bytes / %d messages"
               % (len(counters), len(export["events"]),
                  export["traffic"]["total_bytes"],
                  export["traffic"]["total_messages"]))
    if args.trace:
        summary += ", %d trace spans" % check_trace(args.trace)
    if args.scrape:
        summary += (", %d live sources monotone"
                    % check_scrape(args.scrape, export))
    if args.pair:
        summary += ", %d prometheus samples equal" % check_pair(args.pair)
    if args.healthz:
        summary += ", %d healthz peers" % check_healthz(args.healthz)
    print(summary)


if __name__ == "__main__":
    main()
