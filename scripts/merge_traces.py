#!/usr/bin/env python3
"""Join per-process JSONL traces into cross-party causal timelines.

Every TrustDDL process can write a span trace with --trace-out.  Each
file is self-describing: the first record is a `meta` record carrying
`wall_epoch_us` (the wall clock at the process's t=0), and every
subsequent record's `ts_us` is relative to that origin, so N files from
N processes align onto one wall timeline without any shared clock.

Records are correlated across processes by the correlation id (`corr`)
stamped by obs::CorrelationScope:

  serving   req:<client>:<seq>   client-side serve.request span and
                                 serve.submit / serve.result instants
            batch:<trace_id>     owner serve.dispatch instant (which
                                 maps (client, seq) -> trace_id and
                                 carries per-entry queue_us) and the
                                 three parties' serve.batch spans
  training  round:<epoch>:<round>  owner train.dispatch instant (maps
                                 (owner, seq) -> round, queue_us) and
                                 the parties' train.round spans

For every completed inference request the merger reconstructs the full
causal timeline -- client submit -> owner dispatch -> 3 party batch
executions -> client result -- and attributes the client-observed
end-to-end latency:

  queue_us    time the request waited in the owner's batch queue
              (stamped into the manifest by the scheduler)
  compute_us  slowest party's serve.batch span for the request's batch
              (the critical-path MPC execution, straggler included)
  other_us    e2e - queue - compute: share upload/result download,
              manifest propagation, and client-side overhead

The three components sum to the client-observed e2e by construction
(other_us is the residual, and is reported, not hidden).

Usage:
  merge_traces.py TRACE.jsonl... [--out TRACE_REPORT.md]
                  [--require-complete] [--max-rows N]
  merge_traces.py --self-check

--require-complete exits 1 unless every completed (status ok) request
resolves to a complete timeline (owner dispatch entry + all three
parties' batch spans) AND every party batch span maps back to a known
dispatch -- the CI gate against silently dropped or orphaned spans.

Stdlib only; no third-party imports.
"""

import argparse
import json
import os
import statistics
import sys
import tempfile

COMPUTING_PARTIES = (0, 1, 2)


def load_trace(path):
    """Parse one JSONL trace; returns (meta, records).

    Raises ValueError on a malformed line -- a trace with a torn record
    means the writer crashed mid-line or two threads interleaved, both
    of which the tracer is supposed to make impossible.
    """
    meta = None
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: malformed record: {error}")
            if record.get("kind") == "meta":
                meta = record
            else:
                records.append(record)
    if meta is None:
        raise ValueError(f"{path}: no meta record (not a --trace-out file?)")
    origin = int(meta.get("wall_epoch_us", 0))
    # Fleet deployments stamp the pod name into the meta record; carry
    # it onto every span so timelines can be attributed to the serving
    # pod even after traces from many pods are merged into one pool.
    pod = meta.get("pod")
    for record in records:
        record["wall_us"] = origin + int(record.get("ts_us", 0))
        record["source"] = os.path.basename(path)
        if pod is not None:
            record["pod"] = pod
    return meta, records


def index_serving(records):
    """Index serving-layer records by their join keys."""
    requests = {}    # (client, seq) -> serve.request span
    submits = {}     # (client, seq) -> serve.submit instant
    results = {}     # (client, seq) -> [serve.result instants]
    dispatches = {}  # trace_id -> serve.dispatch instant
    entry_of = {}    # (client, seq) -> (trace_id, entry dict); last wins
    batches = {}     # trace_id -> {party -> serve.batch span}
    for record in records:
        name = record.get("name", "")
        if name == "serve.request":
            key = (int(record["party"]), int(record["step"]))
            requests[key] = record
        elif name == "serve.submit":
            submits[(int(record["party"]), int(record["step"]))] = record
        elif name == "serve.result":
            key = (int(record["party"]), int(record["step"]))
            results.setdefault(key, []).append(record)
        elif name == "serve.dispatch":
            trace_id = int(record["trace_id"])
            dispatches[trace_id] = record
            for entry in record.get("entries", []):
                key = (int(entry["client"]), int(entry["seq"]))
                # A retried request reaches a later batch; the retry is
                # the one whose results the client accepted.
                entry_of[key] = (trace_id, entry)
        elif name == "serve.batch":
            corr = record.get("corr", "")
            if corr.startswith("batch:"):
                trace_id = int(corr[len("batch:"):])
                batches.setdefault(trace_id, {})[int(record["party"])] = record
    return requests, submits, results, dispatches, entry_of, batches


def build_timelines(records):
    """Resolve every client request into a (timeline, problems) pair."""
    requests, submits, results, dispatches, entry_of, batches = \
        index_serving(records)
    timelines = []
    problems = []
    for key in sorted(requests):
        client, seq = key
        span = requests[key]
        status = span.get("status", "?")
        timeline = {
            "client": client,
            "seq": seq,
            "status": status,
            "rows": int(span.get("rows", 0)),
            "attempt": int(span.get("attempt", 1)),
            "e2e_us": int(span["dur_us"]),
            "wall_start_us": span["wall_us"],
            "trace_id": None,
            "pod": None,
            "queue_us": None,
            "compute_us": None,
            "other_us": None,
            "party_batch_us": {},
            "complete": False,
        }
        if key in entry_of:
            trace_id, entry = entry_of[key]
            timeline["trace_id"] = trace_id
            # The pod that served the request is the dispatching
            # owner's pod (the client routes between pods and carries
            # no pod identity of its own).
            dispatch = dispatches.get(trace_id)
            if dispatch is not None:
                timeline["pod"] = dispatch.get("pod")
            timeline["queue_us"] = int(entry.get("queue_us", 0))
            spans = batches.get(trace_id, {})
            timeline["party_batch_us"] = {
                party: int(spans[party]["dur_us"])
                for party in sorted(spans)
            }
            missing = [p for p in COMPUTING_PARTIES if p not in spans]
            if not missing:
                timeline["compute_us"] = max(
                    int(spans[p]["dur_us"]) for p in COMPUTING_PARTIES)
                timeline["other_us"] = (timeline["e2e_us"] -
                                        timeline["queue_us"] -
                                        timeline["compute_us"])
                timeline["complete"] = True
            elif status == "ok":
                problems.append(
                    f"request req:{client}:{seq}: no serve.batch span from "
                    f"part{'y' if len(missing) == 1 else 'ies'} "
                    f"{','.join(map(str, missing))} "
                    f"(batch {trace_id})")
        elif status == "ok":
            problems.append(
                f"request req:{client}:{seq}: completed ok but matches no "
                f"serve.dispatch entry (owner trace missing?)")
        timelines.append(timeline)

    # Orphan check: every party batch span must trace back to an owner
    # dispatch.  An orphan means a party executed work the sequencer
    # never announced -- corrupted correlation, not just missing files.
    for trace_id, spans in sorted(batches.items()):
        if trace_id not in dispatches:
            parties = ",".join(str(p) for p in sorted(spans))
            problems.append(
                f"batch {trace_id}: serve.batch spans from parties "
                f"{parties} match no serve.dispatch record")
    return timelines, problems


def index_training(records):
    """Group training-round records: round -> dispatch + party spans."""
    rounds = {}
    submissions = {}  # (owner, seq) -> train.submit instant
    for record in records:
        name = record.get("name", "")
        if name == "train.dispatch":
            key = (None)
            corr = record.get("corr", "")
            slot = rounds.setdefault(corr, {"dispatch": None, "parties": {}})
            slot["dispatch"] = record
        elif name == "train.round":
            corr = record.get("corr", "")
            if corr.startswith("round:"):
                slot = rounds.setdefault(
                    corr, {"dispatch": None, "parties": {}})
                slot["parties"][int(record["party"])] = record
        elif name == "train.submit":
            submissions[(int(record["party"]), int(record["step"]))] = record
    return rounds, submissions


def fmt_us(us):
    if us is None:
        return "-"
    return f"{us / 1000.0:.1f}"


def percentile(values, fraction):
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def render_report(timelines, problems, rounds, submissions, max_rows):
    lines = []
    lines.append("# Cross-party trace report")
    lines.append("")

    ok = [t for t in timelines if t["status"] == "ok"]
    complete = [t for t in ok if t["complete"]]
    lines.append("## Serving requests")
    lines.append("")
    if not timelines:
        lines.append("No serve.request spans found in the input traces.")
        lines.append("")
    else:
        lines.append(f"- requests traced: {len(timelines)} "
                     f"({len(ok)} ok, {len(timelines) - len(ok)} failed)")
        lines.append(f"- complete timelines (owner dispatch + all "
                     f"{len(COMPUTING_PARTIES)} party batch spans): "
                     f"{len(complete)}/{len(ok)}")
        if complete:
            e2e = [t["e2e_us"] for t in complete]
            lines.append(f"- e2e latency ms: p50 "
                         f"{fmt_us(percentile(e2e, 0.50))}, p95 "
                         f"{fmt_us(percentile(e2e, 0.95))}, max "
                         f"{fmt_us(max(e2e))}")
            total_e2e = sum(e2e)
            total_queue = sum(t["queue_us"] for t in complete)
            total_compute = sum(t["compute_us"] for t in complete)
            total_other = sum(t["other_us"] for t in complete)
            lines.append(
                f"- critical-path attribution (sums to e2e): queue "
                f"{100.0 * total_queue / total_e2e:.1f}%, compute "
                f"{100.0 * total_compute / total_e2e:.1f}%, "
                f"network+other {100.0 * total_other / total_e2e:.1f}%")
            by_pod = {}
            for timeline in complete:
                if timeline["pod"] is not None:
                    by_pod.setdefault(timeline["pod"], []).append(
                        timeline["e2e_us"])
            for pod in sorted(by_pod):
                e2e = by_pod[pod]
                lines.append(
                    f"- pod {pod}: {len(e2e)} requests, e2e ms p50 "
                    f"{fmt_us(percentile(e2e, 0.50))}, p95 "
                    f"{fmt_us(percentile(e2e, 0.95))}")
        lines.append("")
        lines.append("| request | batch | pod | status | e2e ms | "
                     "queue ms | compute ms | other ms | "
                     "per-party batch ms |")
        lines.append("|---|---|---|---|---:|---:|---:|---:|---|")
        for timeline in timelines[:max_rows]:
            per_party = " ".join(
                f"p{party}:{fmt_us(duration)}"
                for party, duration in timeline["party_batch_us"].items())
            batch = (str(timeline["trace_id"] & 0xFFFFFFFF)
                     if timeline["trace_id"] is not None else "-")
            lines.append(
                f"| req:{timeline['client']}:{timeline['seq']} "
                f"| {batch} | {timeline['pod'] or '-'} "
                f"| {timeline['status']} "
                f"| {fmt_us(timeline['e2e_us'])} "
                f"| {fmt_us(timeline['queue_us'])} "
                f"| {fmt_us(timeline['compute_us'])} "
                f"| {fmt_us(timeline['other_us'])} "
                f"| {per_party or '-'} |")
        if len(timelines) > max_rows:
            lines.append("")
            lines.append(f"({len(timelines) - max_rows} more requests "
                         f"omitted; rerun with --max-rows)")
        lines.append("")

    if rounds:
        lines.append("## Training rounds")
        lines.append("")
        lines.append(f"- rounds traced: {len(rounds)}; owner submissions "
                     f"traced: {len(submissions)}")
        lines.append("")
        lines.append("| round | owners | queue ms (max) | "
                     "round ms (slowest party) | parties |")
        lines.append("|---|---:|---:|---:|---|")
        def round_key(corr):
            parts = corr.split(":")
            try:
                return (int(parts[1]), int(parts[2]))
            except (IndexError, ValueError):
                return (1 << 62, 0)
        for corr in sorted(rounds, key=round_key)[:max_rows]:
            slot = rounds[corr]
            dispatch = slot["dispatch"]
            entries = dispatch.get("entries", []) if dispatch else []
            queue = max((int(e.get("queue_us", 0)) for e in entries),
                        default=None)
            slowest = max((int(r["dur_us"]) for r in
                           slot["parties"].values()), default=None)
            parties = ",".join(str(p) for p in sorted(slot["parties"]))
            lines.append(f"| {corr} | {len(entries)} | {fmt_us(queue)} "
                         f"| {fmt_us(slowest)} | {parties or '-'} |")
        lines.append("")

    lines.append("## Completeness")
    lines.append("")
    if problems:
        for problem in problems:
            lines.append(f"- UNMATCHED: {problem}")
    else:
        lines.append("- every completed request resolved to a full "
                     "owner + party timeline; no orphaned spans")
    lines.append("")
    return "\n".join(lines)


def self_check():
    """Merge a synthetic two-process fixture and assert the joins."""
    fixture_client = [
        {"kind": "meta", "name": "process", "party": -1, "step": 0,
         "ts_us": 0, "dur_us": 0, "wall_epoch_us": 1000000, "pid": 1},
        {"kind": "instant", "name": "serve.submit", "party": 5, "step": 0,
         "ts_us": 10, "dur_us": 0, "rows": 2, "corr": "req:5:0"},
        {"kind": "span", "name": "serve.request", "party": 5, "step": 0,
         "ts_us": 5, "dur_us": 1000, "corr": "req:5:0", "status": "ok",
         "rows": 2, "attempt": 1},
    ]
    fixture_parties = [
        {"kind": "meta", "name": "process", "party": -1, "step": 0,
         "ts_us": 0, "dur_us": 0, "wall_epoch_us": 1000050, "pid": 2,
         "pod": "east"},
        {"kind": "instant", "name": "serve.dispatch", "party": 4, "step": 0,
         "ts_us": 40, "dur_us": 0, "trace_id": 77,
         "entries": [{"client": 5, "seq": 0, "rows": 2, "queue_us": 100}],
         "corr": "batch:77"},
    ] + [
        {"kind": "span", "name": "serve.batch", "party": party, "step": 0,
         "ts_us": 60, "dur_us": 700 + 10 * party, "corr": "batch:77"}
        for party in COMPUTING_PARTIES
    ] + [
        {"kind": "instant", "name": "train.dispatch", "party": 4, "step": 0,
         "ts_us": 90, "dur_us": 0, "epoch": 0,
         "entries": [{"owner": 5, "seq": 0, "rows": 8, "queue_us": 30}],
         "corr": "round:0:0"},
        {"kind": "span", "name": "train.round", "party": 0, "step": 0,
         "ts_us": 95, "dur_us": 400, "corr": "round:0:0"},
    ]
    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        for name, fixture in (("client.jsonl", fixture_client),
                              ("parties.jsonl", fixture_parties)):
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as handle:
                for record in fixture:
                    handle.write(json.dumps(record) + "\n")
            paths.append(path)
        records = []
        for path in paths:
            _, file_records = load_trace(path)
            records.extend(file_records)
        timelines, problems = build_timelines(records)
        rounds, submissions = index_training(records)

        assert len(timelines) == 1, timelines
        timeline = timelines[0]
        assert timeline["complete"], timeline
        assert timeline["queue_us"] == 100, timeline
        assert timeline["compute_us"] == 720, timeline  # slowest party (2)
        assert timeline["other_us"] == 1000 - 100 - 720, timeline
        assert (timeline["queue_us"] + timeline["compute_us"] +
                timeline["other_us"] == timeline["e2e_us"]), timeline
        # Clock alignment: the client span start maps through its own
        # wall origin, not the parties'.
        assert timeline["wall_start_us"] == 1000000 + 5, timeline
        # Pod attribution follows the dispatching owner, not the
        # (pod-less) client.
        assert timeline["pod"] == "east", timeline
        assert not problems, problems
        assert "round:0:0" in rounds, rounds

        report = render_report(timelines, problems, rounds, submissions, 50)
        assert "req:5:0" in report and "round:0:0" in report
        assert "pod east: 1 requests" in report, report

        # Orphan detection: a batch span with no dispatch must surface.
        orphan = dict(fixture_parties[2])
        orphan["corr"] = "batch:999"
        _, orphan_problems = build_timelines(records + [orphan])
        assert any("999" in p for p in orphan_problems), orphan_problems
    print("merge_traces self-check: ok")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="join per-process --trace-out files into "
                    "cross-party timelines")
    parser.add_argument("traces", nargs="*", help="JSONL trace files")
    parser.add_argument("--out", default="TRACE_REPORT.md",
                        help="report path [TRACE_REPORT.md]")
    parser.add_argument("--max-rows", type=int, default=64,
                        help="table row cap in the report [64]")
    parser.add_argument("--require-complete", action="store_true",
                        help="exit 1 unless every ok request has a full "
                             "owner + 3-party timeline and no span is "
                             "orphaned")
    parser.add_argument("--self-check", action="store_true",
                        help="run the built-in synthetic fixture test")
    args = parser.parse_args()

    if args.self_check:
        return self_check()
    if not args.traces:
        parser.error("no trace files given (or use --self-check)")

    records = []
    for path in args.traces:
        meta, file_records = load_trace(path)
        records.extend(file_records)
        print(f"{path}: {len(file_records)} records, pid {meta.get('pid')}")

    timelines, problems = build_timelines(records)
    rounds, submissions = index_training(records)
    report = render_report(timelines, problems, rounds, submissions,
                           args.max_rows)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(report)
    ok = [t for t in timelines if t["status"] == "ok"]
    complete = [t for t in ok if t["complete"]]
    print(f"{len(timelines)} requests ({len(complete)}/{len(ok)} ok "
          f"requests complete), {len(rounds)} training rounds -> "
          f"{args.out}")
    for problem in problems:
        print(f"UNMATCHED: {problem}", file=sys.stderr)
    if args.require_complete:
        if problems or len(complete) != len(ok):
            print("merge_traces: --require-complete failed", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
