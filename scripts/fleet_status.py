#!/usr/bin/env python3
"""One-page fleet roll-up from the parties' live admin endpoints.

Every TrustDDL process started with --admin-port serves GET /healthz,
/metrics, /events and /status on 127.0.0.1 (DESIGN.md section 12).
This script polls a list of those endpoints and renders the whole
deployment on one page: per-process liveness, the stalest peer link
each process sees, progress watermarks, and recent detection events.

Usage:
  fleet_status.py HOST:PORT...            one-shot roll-up
  fleet_status.py --ports 28600,28601     shorthand for 127.0.0.1 ports
  fleet_status.py --topology fleet.json   pod-grouped fleet roll-up
  fleet_status.py ... --watch 2           repaint every 2 seconds
  fleet_status.py ... --json              machine-readable output

Exit status without --topology: 0 when every polled endpoint answered
/healthz with status ok, 1 when any endpoint was unreachable or
degraded -- so the one-shot form doubles as a fleet health probe in
scripts.

With --topology (a trustddl.fleet.v1 file; see DESIGN.md section 13)
the endpoints come from each pod's admin_ports, the roll-up is grouped
by pod, and the exit code is fleet-level: 0 when every pod is fully
healthy, 1 when the fleet is degraded (some pods healthy, some not --
routed clients still have somewhere to fail over to), 2 when no pod is
healthy (a fleet-wide outage).  A refused or half-open admin port is
reported as DOWN and never crashes the poll -- crashed pods are a
state to display, not an error to die on.

Stdlib only; no third-party imports.
"""

import argparse
import http.client
import json
import sys
import time
import urllib.error
import urllib.request


def fetch_json(base, target, timeout):
    """GET http://<base><target>; returns (status_code, parsed or None)."""
    url = f"http://{base}{target}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            return error.code, json.loads(error.read())
        except (json.JSONDecodeError, ValueError):
            return error.code, None
    except (OSError, http.client.HTTPException, json.JSONDecodeError,
            ValueError):
        # OSError covers refused/reset connections; HTTPException
        # covers half-open sockets (e.g. RemoteDisconnected, where a
        # dying process accepted the connection but never answered).
        # Either way the endpoint is DOWN -- report it and keep
        # polling the rest of the fleet.
        return 0, None


def load_topology(path):
    """Parse a trustddl.fleet.v1 topology into [(pod, [endpoints])]."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    pods = []
    for pod in document.get("pods", []):
        name = pod.get("name")
        host = pod.get("host", "127.0.0.1")
        ports = pod.get("admin_ports", [])
        if not name:
            raise ValueError(f"{path}: pod without a name")
        if not ports:
            raise ValueError(f"{path}: pod {name} lists no admin_ports")
        pods.append((name, [f"{host}:{port}" for port in ports]))
    if not pods:
        raise ValueError(f"{path}: no pods in topology")
    return pods


def poll_endpoint(base, timeout):
    """Scrape one admin endpoint into a summary dict."""
    summary = {"endpoint": base, "reachable": False, "healthy": False}
    code, health = fetch_json(base, "/healthz", timeout)
    if health is None:
        return summary
    summary["reachable"] = True
    summary["healthy"] = code == 200 and health.get("status") == "ok"
    summary["role"] = health.get("role", "?")
    summary["task"] = health.get("task", "?")
    summary["uptime_us"] = int(health.get("uptime_us", 0))
    peers = health.get("peers", [])
    summary["peers"] = len(peers)
    summary["stale_peers"] = sum(1 for p in peers if p.get("stale"))
    if peers:
        stalest = max(peers, key=lambda p: int(p.get("age_us", 0)))
        summary["stalest_peer"] = int(stalest.get("peer", -1))
        summary["stalest_age_us"] = int(stalest.get("age_us", 0))

    _, status = fetch_json(base, "/status", timeout)
    if status is not None:
        summary["watermarks"] = status.get("watermarks", {})
        summary["requests_served"] = int(status.get("requests_served", 0))

    _, events = fetch_json(base, "/events?n=5", timeout)
    if isinstance(events, list):
        summary["recent_events"] = events
    return summary


def fmt_age(us):
    if us is None:
        return "-"
    if us >= 1_000_000:
        return f"{us / 1e6:.1f}s"
    return f"{us / 1e3:.0f}ms"


def pod_health(summaries):
    """Map pod -> True iff every one of its endpoints is healthy."""
    pods = {}
    for summary in summaries:
        pod = summary.get("pod")
        if pod is not None:
            pods[pod] = pods.get(pod, True) and summary["healthy"]
    return pods


def render(summaries):
    lines = []
    healthy = sum(1 for s in summaries if s["healthy"])
    pods = pod_health(summaries)
    if pods:
        healthy_pods = sum(1 for ok in pods.values() if ok)
        lines.append(f"fleet: {healthy_pods}/{len(pods)} pods healthy, "
                     f"{healthy}/{len(summaries)} endpoints healthy "
                     f"({time.strftime('%H:%M:%S')})")
    else:
        lines.append(f"fleet: {healthy}/{len(summaries)} endpoints healthy "
                     f"({time.strftime('%H:%M:%S')})")
    lines.append("")
    header = (f"{'endpoint':<22} {'health':<9} {'role':<34} "
              f"{'uptime':>8} {'stalest peer':>14} {'watermarks'}")
    lines.append(header)
    lines.append("-" * len(header))
    current_pod = None
    for summary in summaries:
        pod = summary.get("pod")
        if pod is not None and pod != current_pod:
            current_pod = pod
            state = "ok" if pods[pod] else "DEGRADED"
            lines.append(f"pod {pod}: {state}")
        prefix = "  " if pod is not None else ""
        if not summary["reachable"]:
            lines.append(f"{prefix}{summary['endpoint']:<22} {'DOWN':<9}")
            continue
        health = "ok" if summary["healthy"] else "DEGRADED"
        stalest = "-"
        if "stalest_peer" in summary:
            stalest = (f"p{summary['stalest_peer']} "
                       f"{fmt_age(summary['stalest_age_us'])}")
            if summary["stale_peers"]:
                stalest += f" ({summary['stale_peers']} stale)"
        watermarks = ", ".join(
            f"{key}={value}"
            for key, value in sorted(summary.get("watermarks", {}).items()))
        lines.append(f"{prefix}{summary['endpoint']:<22} {health:<9} "
                     f"{summary.get('role', '?'):<34} "
                     f"{fmt_age(summary.get('uptime_us')):>8} "
                     f"{stalest:>14} {watermarks}")
    events = [(s["endpoint"], e)
              for s in summaries for e in s.get("recent_events", [])]
    if events:
        lines.append("")
        lines.append("recent detection events:")
        for endpoint, event in events[-10:]:
            lines.append(f"  [{endpoint}] party {event.get('party')} "
                         f"suspects {event.get('suspect')} at step "
                         f"{event.get('step')}: {event.get('kind')} "
                         f"during {event.get('phase')} -> "
                         f"{event.get('recovery')}")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(
        description="poll TrustDDL admin endpoints into one status page")
    parser.add_argument("endpoints", nargs="*", help="HOST:PORT...")
    parser.add_argument("--ports", default="",
                        help="comma-separated ports on 127.0.0.1 "
                             "(shorthand for positional endpoints)")
    parser.add_argument("--topology", default="",
                        help="trustddl.fleet.v1 topology file: poll every "
                             "pod's admin_ports, group by pod, exit "
                             "0=healthy/1=degraded/2=outage")
    parser.add_argument("--timeout", type=float, default=2.0,
                        help="per-request timeout seconds [2]")
    parser.add_argument("--watch", type=float, default=0.0, metavar="SEC",
                        help="repaint every SEC seconds until ^C")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw summaries as JSON")
    args = parser.parse_args()

    endpoints = list(args.endpoints)
    endpoints += [f"127.0.0.1:{port.strip()}"
                  for port in args.ports.split(",") if port.strip()]
    targets = [(None, base) for base in endpoints]
    if args.topology:
        if endpoints:
            parser.error("--topology already names the fleet's endpoints; "
                         "drop the positional/--ports ones")
        try:
            for pod, pod_endpoints in load_topology(args.topology):
                targets += [(pod, base) for base in pod_endpoints]
        except (OSError, ValueError, json.JSONDecodeError) as error:
            parser.error(f"cannot load topology: {error}")
    if not targets:
        parser.error("no endpoints given (positional, --ports or "
                     "--topology)")

    while True:
        summaries = []
        for pod, base in targets:
            summary = poll_endpoint(base, args.timeout)
            if pod is not None:
                summary["pod"] = pod
            summaries.append(summary)
        if args.json:
            print(json.dumps(summaries, indent=2))
        else:
            print(render(summaries))
        if not args.watch:
            if args.topology:
                pods = pod_health(summaries)
                healthy_pods = sum(1 for ok in pods.values() if ok)
                if healthy_pods == len(pods):
                    return 0
                return 1 if healthy_pods else 2
            return 0 if all(s["healthy"] for s in summaries) else 1
        time.sleep(args.watch)


if __name__ == "__main__":
    sys.exit(main())
