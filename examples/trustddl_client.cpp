// trustddl_client: drive secure inference requests against a serving
// deployment started with `trustddl_party --task serve`.
//
// The client is actor id >= 5 on the same TCP mesh as the parties: it
// secret-shares each query locally (no party ever sees the plaintext),
// sends one share triple to each computing party, notifies the model
// owner for admission into the dynamic batcher, then reconstructs the
// class probabilities from any two of the three parties' result
// shares, out-voting a Byzantine party via robust reconstruction.
//
// Four-process smoke on localhost (3 parties + owner in 3 processes,
// then this client in the foreground):
//
//   ./build/examples/trustddl_party --task serve --party-ids 1 &
//   ./build/examples/trustddl_party --task serve --party-ids 2 &
//   ./build/examples/trustddl_party --task serve --party-ids 0,4 &
//   ./build/examples/trustddl_client --requests 16 --check
//
// Flags:
//   --client-id N        this client's actor id [5]; clients occupy
//                        ids 5..5+clients-1
//   --clients N          total clients in the deployment [1] (must
//                        match the parties' --clients)
//   --port-base N        actor i listens on 127.0.0.1:(N+i)  [29500]
//   --peers LIST         explicit mesh: id=host:port,...; must cover
//                        ids 0,1,2,4 and this client's own id
//   --listen HOST        bind host for the client id [from the mesh]
//   --requests N         inference requests to issue [16]
//   --concurrency N      submitter threads sharing this client [4]
//   --rows N             input rows per request [1]
//   --model mlp|cnn|tiny-cnn   architecture [mlp] (must match parties)
//   --mode malicious|hbc       security mode [malicious] (ditto)
//   --batch-openings on|off    deferred-opening scheduler [on] (ditto)
//   --seed N             model/protocol seed [1] (ditto)
//   --data-seed N        synthetic query-set seed [7]
//   --deadline-ms N      owner-enforced queue deadline [2000]
//   --response-timeout-ms N    client-side wait for result shares
//                        [10000]
//   --check              re-run the same queries on the in-memory
//                        engine (same seeds) and compare predicted
//                        labels; exits 2 on mismatch
//   --fleet PATH         routed fleet mode: read the pod map from a
//                        trustddl.fleet.v1 topology file (see
//                        src/fleet/topology.hpp), hash --client-id to
//                        a home pod, and fail over to the next pod in
//                        preference order when a pod dies mid-request
//                        (label-exact — every pod loads the same model
//                        seed).  Pods are health-probed via admin
//                        /healthz before shares move.  Incompatible
//                        with --peers; --port-base is ignored
//   --request-gap-ms N   pause between a worker thread's consecutive
//                        requests [0] (spreads a workload out so chaos
//                        drills can kill a pod mid-traffic)
//   --connect-timeout-ms N     mesh rendezvous budget [10000]
//   --trace-out FILE     write a JSONL span trace of every request
//                        (serve.submit/serve.result instants plus one
//                        serve.request span per request, all carrying
//                        the req:<client>:<seq> correlation id).
//                        scripts/merge_traces.py joins this file with
//                        the parties' --trace-out files into
//                        per-request causal timelines.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/roles.hpp"
#include "data/synthetic_mnist.hpp"
#include "fleet/client.hpp"
#include "fleet/topology.hpp"
#include "net/tcp_transport.hpp"
#include "nn/model_zoo.hpp"
#include "obs/admin_server.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"

using namespace trustddl;

namespace {

struct Options {
  int client_id = serve::kFirstClientId;
  fleet::FleetTopology topology;  // loaded when --fleet was given
  int clients = 1;
  int port_base = 29500;
  std::string peers_text;
  std::string listen_host;
  std::size_t requests = 16;
  int concurrency = 4;
  std::size_t rows = 1;
  std::string model = "mlp";
  std::string mode = "malicious";
  bool batch_openings = true;
  std::uint64_t seed = 1;
  std::uint64_t data_seed = 7;
  int deadline_ms = 2000;
  int response_timeout_ms = 10000;
  bool check = false;
  int connect_timeout_ms = 10000;
  std::string trace_out;
  std::string fleet_file;
  int request_gap_ms = 0;
};

[[noreturn]] void usage_error(const std::string& reason) {
  std::fprintf(stderr, "trustddl_client: %s\n(see the header comment of "
               "examples/trustddl_client.cpp for flags)\n",
               reason.c_str());
  std::exit(64);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  bool clients_given = false;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      usage_error(std::string("missing value for ") + argv[i]);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--client-id") {
      opt.client_id = std::atoi(value(i).c_str());
    } else if (arg == "--clients") {
      opt.clients = std::atoi(value(i).c_str());
      clients_given = true;
    } else if (arg == "--port-base") {
      opt.port_base = std::atoi(value(i).c_str());
    } else if (arg == "--peers") {
      opt.peers_text = value(i);
    } else if (arg == "--listen") {
      opt.listen_host = value(i);
    } else if (arg == "--requests") {
      opt.requests = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--concurrency") {
      opt.concurrency = std::atoi(value(i).c_str());
    } else if (arg == "--rows") {
      opt.rows = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--model") {
      opt.model = value(i);
    } else if (arg == "--mode") {
      opt.mode = value(i);
    } else if (arg == "--batch-openings") {
      opt.batch_openings = value(i) == "on";
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(i).c_str(), nullptr, 10);
    } else if (arg == "--data-seed") {
      opt.data_seed = std::strtoull(value(i).c_str(), nullptr, 10);
    } else if (arg == "--deadline-ms") {
      opt.deadline_ms = std::atoi(value(i).c_str());
    } else if (arg == "--response-timeout-ms") {
      opt.response_timeout_ms = std::atoi(value(i).c_str());
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--connect-timeout-ms") {
      opt.connect_timeout_ms = std::atoi(value(i).c_str());
    } else if (arg == "--trace-out") {
      opt.trace_out = value(i);
    } else if (arg == "--fleet") {
      opt.fleet_file = value(i);
    } else if (arg == "--request-gap-ms") {
      opt.request_gap_ms = std::atoi(value(i).c_str());
    } else {
      usage_error("unknown flag " + arg);
    }
  }
  if (!opt.fleet_file.empty() && !opt.peers_text.empty()) {
    usage_error("--fleet and --peers are mutually exclusive (the topology "
                "file is the pod address map)");
  }
  if (opt.request_gap_ms < 0) {
    usage_error("--request-gap-ms must be >= 0");
  }
  // Fleet mode resolves the client count from the shared topology file
  // (unless --clients overrides), so routed clients and pods agree on
  // the actor space without repeating it on every command line.
  if (!opt.fleet_file.empty()) {
    try {
      opt.topology = fleet::load_topology(opt.fleet_file);
    } catch (const Error& error) {
      usage_error(error.what());
    }
    if (opt.topology.clients > 0 && !clients_given) {
      opt.clients = opt.topology.clients;
    }
  }
  if (opt.clients < 1) {
    usage_error("--clients must be >= 1");
  }
  if (opt.client_id < serve::kFirstClientId ||
      opt.client_id >= serve::kFirstClientId + opt.clients) {
    usage_error("--client-id must be in [5, 5 + clients)");
  }
  if (opt.requests < 1 || opt.rows < 1 || opt.concurrency < 1) {
    usage_error("--requests/--rows/--concurrency must be >= 1");
  }
  if (opt.mode != "malicious" && opt.mode != "hbc") {
    usage_error("--mode must be malicious or hbc");
  }
  return opt;
}

nn::ModelSpec spec_for(const std::string& name) {
  if (name == "mlp") {
    return nn::mnist_mlp_spec();
  }
  if (name == "cnn") {
    return nn::mnist_cnn_spec();
  }
  if (name == "tiny-cnn") {
    return nn::tiny_cnn_spec();
  }
  usage_error("--model must be mlp, cnn or tiny-cnn");
}

std::vector<std::string> mesh_addresses(const Options& opt, int num_actors) {
  std::vector<std::string> addresses(static_cast<std::size_t>(num_actors));
  if (opt.peers_text.empty()) {
    for (int id = 0; id < num_actors; ++id) {
      addresses[static_cast<std::size_t>(id)] =
          "127.0.0.1:" + std::to_string(opt.port_base + id);
    }
    return addresses;
  }
  std::size_t start = 0;
  const std::string& text = opt.peers_text;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      usage_error("peer entry '" + item + "' is not id=host:port");
    }
    const int id = std::atoi(item.substr(0, eq).c_str());
    if (id < 0 || id >= num_actors) {
      usage_error("peer id out of range in '" + item + "'");
    }
    addresses[static_cast<std::size_t>(id)] = item.substr(eq + 1);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  for (const int id : {0, 1, 2, core::kModelOwner, opt.client_id}) {
    if (addresses[static_cast<std::size_t>(id)].empty()) {
      usage_error("--peers is missing actor id " + std::to_string(id));
    }
  }
  return addresses;
}

/// Owns the per-pod transport behind a routed session: a fresh
/// ephemeral local port dialing the pod's parties and model owner.
class TcpPodSession final : public fleet::PodSession {
 public:
  TcpPodSession(std::unique_ptr<net::TcpTransport> transport, int client_id,
                const serve::ClientOptions& options)
      : transport_(std::move(transport)),
        client_(transport_->endpoint(static_cast<net::PartyId>(client_id)),
                options) {}
  ~TcpPodSession() override { transport_->shutdown(); }
  serve::InferenceClient& client() override { return client_; }

 private:
  std::unique_ptr<net::TcpTransport> transport_;
  serve::InferenceClient client_;
};

// --fleet: routed mode.  One FleetClient spans every pod in the
// topology; pods are attached lazily (each gets its own transport so
// actor ids never collide across pods), probed via admin /healthz
// before shares move, and failed over when they die mid-request.
int run_fleet(const Options& opt, const core::EngineConfig& config,
              const nn::ModelSpec& spec, const data::TrainTestSplit& split) {
  const fleet::FleetTopology& topology = opt.topology;
  const int num_actors = core::kNumActors + opt.clients;

  serve::ClientOptions client_options;
  client_options.frac_bits = config.frac_bits;
  client_options.dist_tolerance = config.dist_tolerance;
  // Distinct sharing randomness per client slot (same derivation as
  // the in-process serving harness); identical across pods, which is
  // what makes a resubmitted request label-exact.
  const int slot = opt.client_id - serve::kFirstClientId;
  client_options.seed = opt.seed * 1000003ULL +
                        17ULL * static_cast<std::uint64_t>(slot + 1);
  client_options.deadline = std::chrono::milliseconds(opt.deadline_ms);
  client_options.response_timeout =
      std::chrono::milliseconds(opt.response_timeout_ms);

  net::NetworkConfig net_config;
  net_config.num_parties = num_actors;
  net_config.connect.connect_timeout =
      std::chrono::milliseconds(opt.connect_timeout_ms);

  const std::string bind_host =
      opt.listen_host.empty() ? "127.0.0.1" : opt.listen_host;

  // Dial a fresh ephemeral-port transport into the pod's subset mesh
  // on first use; the pod's dynamic acceptor admits (and re-admits) us
  // at any point in its lifetime.  The stop broadcast gets a short
  // budget — a dead pod must not stall shutdown for the full
  // rendezvous timeout.
  const auto connector = [&](std::size_t pod, bool for_stop)
      -> std::unique_ptr<fleet::PodSession> {
    const fleet::PodSpec& pod_spec = topology.pods[pod];
    net::NetworkConfig pod_config = net_config;
    if (for_stop) {
      pod_config.connect.connect_timeout =
          std::chrono::milliseconds(std::min(opt.connect_timeout_ms, 1500));
    }
    auto transport = std::make_unique<net::TcpTransport>(
        static_cast<net::PartyId>(opt.client_id), bind_host + ":0",
        pod_config);
    const std::vector<net::PartyId> peers = {
        0, 1, 2, static_cast<net::PartyId>(core::kModelOwner)};
    std::vector<std::string> addresses(static_cast<std::size_t>(num_actors));
    for (const net::PartyId id : peers) {
      addresses[static_cast<std::size_t>(id)] =
          pod_spec.address_of(static_cast<int>(id));
    }
    transport->connect(addresses, peers);
    return std::make_unique<TcpPodSession>(std::move(transport),
                                           opt.client_id, client_options);
  };

  // Out-of-band liveness: the pod's owner-hosting admin endpoint (the
  // first admin_ports entry by convention) answers /healthz.  Pods
  // without admin ports skip the probe and fail on connect instead.
  const auto probe = [&](std::size_t pod) {
    const fleet::PodSpec& pod_spec = topology.pods[pod];
    if (pod_spec.admin_ports.empty()) {
      return true;
    }
    const obs::HttpResponse response = obs::http_get(
        pod_spec.host, pod_spec.admin_ports.front(), "/healthz", 750);
    return response.status == 200;
  };

  fleet::FleetClientOptions fleet_options;
  fleet_options.client = client_options;
  fleet::FleetClient client(static_cast<std::uint64_t>(opt.client_id),
                            topology.pod_names(), connector, fleet_options,
                            probe);
  std::printf("[client %d] fleet of %zu pods; home pod %s\n", opt.client_id,
              client.num_pods(),
              topology.pods[client.home_pod()].name.c_str());

  std::vector<fleet::FleetResult> results(opt.requests);
  std::atomic<std::size_t> next_request{0};
  std::vector<std::thread> submitters;
  const int threads = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(opt.concurrency), opt.requests));
  for (int t = 0; t < threads; ++t) {
    submitters.emplace_back([&] {
      bool first = true;
      while (true) {
        const std::size_t r = next_request.fetch_add(1);
        if (r >= opt.requests) {
          return;
        }
        if (!first && opt.request_gap_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(opt.request_gap_ms));
        }
        first = false;
        const data::Dataset slice =
            data::slice(split.test, r * opt.rows, opt.rows);
        results[r] = client.infer(slice.images);
      }
    });
  }
  for (auto& submitter : submitters) {
    submitter.join();
  }
  client.stop();
  if (!opt.trace_out.empty()) {
    obs::Tracer::global().close();
  }

  std::size_t ok = 0;
  for (const auto& entry : results) {
    if (entry.result.status == serve::Status::kOk) {
      ++ok;
    }
  }
  const std::vector<std::size_t> served = client.served_by_pod();
  std::string spread;
  for (std::size_t p = 0; p < served.size(); ++p) {
    if (!spread.empty()) {
      spread += " ";
    }
    spread += topology.pods[p].name + "=" + std::to_string(served[p]);
  }
  std::printf("[client %d] completed %zu/%zu requests (%s; %zu "
              "failover%s)\n",
              opt.client_id, ok, opt.requests, spread.c_str(),
              client.total_failovers(),
              client.total_failovers() == 1 ? "" : "s");

  int exit_code = 0;
  if (opt.check) {
    if (ok != opt.requests) {
      std::printf("serve check: MISMATCH (%zu/%zu requests completed)\n", ok,
                  opt.requests);
      exit_code = 2;
    } else {
      // Reference: the in-memory engine over the same query set with
      // the same seeds.  Whichever pod served a request, its labels
      // must match the engine's row for row.
      core::TrustDdlEngine engine(spec, config);
      const core::InferResult expected =
          engine.infer(split.test, std::max<std::size_t>(opt.rows, 4));
      bool match = true;
      for (std::size_t r = 0; r < opt.requests && match; ++r) {
        for (std::size_t i = 0; i < opt.rows; ++i) {
          if (results[r].result.labels[i] !=
              expected.labels[r * opt.rows + i]) {
            match = false;
            break;
          }
        }
      }
      std::printf("serve check: %s (in-memory engine, same seeds, routed "
                  "across pods)\n",
                  match ? "MATCH" : "MISMATCH");
      if (!match) {
        exit_code = 2;
      }
    }
  }

  // Let the stop notices drain before the pod sessions (and their
  // sockets) are torn down with the FleetClient.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const int num_actors = core::kNumActors + opt.clients;

  // Same derivations as trustddl_party/the in-memory engine, so the
  // parties evaluate exactly the model --check compares against.
  core::EngineConfig config;
  config.mode = opt.mode == "hbc" ? mpc::SecurityMode::kHonestButCurious
                                  : mpc::SecurityMode::kMalicious;
  config.batch_openings = opt.batch_openings;
  config.seed = opt.seed;
  config.collect_timeout = std::chrono::milliseconds(2000);

  const nn::ModelSpec spec = spec_for(opt.model);

  data::SyntheticMnistConfig data_config;
  data_config.train_count = 1;
  data_config.test_count = opt.requests * opt.rows;
  data_config.seed = opt.data_seed;
  // Query geometry follows the model: --model tiny-cnn serves 12x12
  // 4-class queries, not the 28x28 MNIST default.
  const nn::InputGeometry geometry = nn::input_geometry(spec);
  data_config.height = geometry.height;
  data_config.width = geometry.width;
  data_config.classes = spec.classes;
  const auto split = data::generate_synthetic_mnist(data_config);

  if (!opt.trace_out.empty()) {
    obs::Tracer::global().open(opt.trace_out);
  }

  if (!opt.fleet_file.empty()) {
    try {
      return run_fleet(opt, config, spec, split);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "trustddl_client: %s\n", error.what());
      return 1;
    }
  }

  const std::vector<std::string> addresses = mesh_addresses(opt, num_actors);

  net::NetworkConfig net_config;
  net_config.num_parties = num_actors;
  net_config.connect.connect_timeout =
      std::chrono::milliseconds(opt.connect_timeout_ms);

  try {
    std::string listen = addresses[static_cast<std::size_t>(opt.client_id)];
    if (!opt.listen_host.empty()) {
      listen = opt.listen_host + ":" +
               std::to_string(net::parse_address(listen).port);
    }
    std::printf("[client %d] listening on %s\n", opt.client_id,
                listen.c_str());
    net::TcpTransport transport(static_cast<net::PartyId>(opt.client_id),
                                listen, net_config);
    transport.connect(addresses,
                      {0, 1, 2, static_cast<net::PartyId>(core::kModelOwner)});
    std::printf("[client %d] connected to parties and model owner\n",
                opt.client_id);

    serve::ClientOptions client_options;
    client_options.frac_bits = config.frac_bits;
    client_options.dist_tolerance = config.dist_tolerance;
    // Distinct sharing randomness per client slot (same derivation as
    // the in-process serving harness).
    const int slot = opt.client_id - serve::kFirstClientId;
    client_options.seed = opt.seed * 1000003ULL +
                          17ULL * static_cast<std::uint64_t>(slot + 1);
    client_options.deadline = std::chrono::milliseconds(opt.deadline_ms);
    client_options.response_timeout =
        std::chrono::milliseconds(opt.response_timeout_ms);
    serve::InferenceClient client(
        transport.endpoint(static_cast<net::PartyId>(opt.client_id)),
        client_options);

    // `concurrency` threads share the one client, pulling request
    // indices from a counter; request r carries test rows
    // [r*rows, (r+1)*rows).
    std::vector<serve::InferenceResult> results(opt.requests);
    std::atomic<std::size_t> next_request{0};
    std::vector<std::thread> submitters;
    const int threads =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(opt.concurrency), opt.requests));
    for (int t = 0; t < threads; ++t) {
      submitters.emplace_back([&] {
        while (true) {
          const std::size_t r = next_request.fetch_add(1);
          if (r >= opt.requests) {
            return;
          }
          const data::Dataset slice =
              data::slice(split.test, r * opt.rows, opt.rows);
          results[r] = client.infer(slice.images);
        }
      });
    }
    for (auto& submitter : submitters) {
      submitter.join();
    }
    client.stop();
    if (!opt.trace_out.empty()) {
      obs::Tracer::global().close();
    }

    std::size_t ok = 0;
    std::size_t anomalies = 0;
    std::vector<std::size_t> labels;
    for (const auto& result : results) {
      if (result.status == serve::Status::kOk) {
        ++ok;
        labels.insert(labels.end(), result.labels.begin(),
                      result.labels.end());
      }
      if (result.anomaly) {
        ++anomalies;
      }
    }
    std::printf("[client %d] completed %zu/%zu requests (%zu with a "
                "flagged share set)\n",
                opt.client_id, ok, opt.requests, anomalies);
    std::printf("[client %d] predicted labels:", opt.client_id);
    for (std::size_t i = 0; i < labels.size() && i < 24; ++i) {
      std::printf(" %zu", labels[i]);
    }
    std::printf("%s\n", labels.size() > 24 ? " ..." : "");

    int exit_code = 0;
    if (opt.check) {
      if (ok != opt.requests) {
        std::printf("serve check: MISMATCH (%zu/%zu requests completed)\n",
                    ok, opt.requests);
        exit_code = 2;
      } else {
        // Reference: the in-memory engine over the same query set with
        // the same seeds.  Per-request labels must match its labels
        // row for row.
        core::TrustDdlEngine engine(spec, config);
        const core::InferResult expected =
            engine.infer(split.test, std::max<std::size_t>(opt.rows, 4));
        bool match = true;
        for (std::size_t r = 0; r < opt.requests && match; ++r) {
          for (std::size_t i = 0; i < opt.rows; ++i) {
            if (results[r].labels[i] != expected.labels[r * opt.rows + i]) {
              match = false;
              break;
            }
          }
        }
        std::printf("serve check: %s (in-memory engine, same seeds)\n",
                    match ? "MATCH" : "MISMATCH");
        if (!match) {
          exit_code = 2;
        }
      }
    }

    // Let the final stop notice drain before closing the sockets.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    transport.shutdown();
    return exit_code;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trustddl_client: %s\n", error.what());
    return 1;
  }
}
