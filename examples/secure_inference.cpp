// Private inference as a service (paper §III-A):
//
// The model owner holds a trained classifier, the data owner holds
// private images.  Neither trusts the three cloud computing parties
// individually.  TrustDDL shares model and inputs into the proxy
// layer, evaluates the network on shares, and reconstructs the
// predictions only at the data owner — then repeats the whole exchange
// with one computing party actively malicious.
//
// Build & run:  ./build/examples/secure_inference
#include <cstdio>

#include "core/engine.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/loss.hpp"

using namespace trustddl;

int main() {
  std::printf("=== TrustDDL private inference ===\n\n");

  // --- Model owner: train a small model in the clear (its own data).
  data::SyntheticMnistConfig data_config;
  data_config.train_count = 1500;
  data_config.test_count = 24;
  data_config.seed = 11;
  const auto split = data::generate_synthetic_mnist(data_config);

  core::EngineConfig config;
  config.mode = mpc::SecurityMode::kMalicious;
  config.seed = 2;
  core::TrustDdlEngine engine(nn::mnist_mlp_spec(), config);
  {
    nn::SgdOptimizer optimizer(0.3);
    auto& model = engine.reference_model();
    for (std::size_t start = 0; start + 20 <= split.train.size();
         start += 20) {
      const auto batch = data::slice(split.train, start, 20);
      model.train_step(batch.images, nn::one_hot(batch.labels, 10),
                       optimizer);
    }
    std::printf("model owner trained a 784-64-10 MLP, plaintext test "
                "accuracy %.1f%%\n\n",
                100 * model.accuracy(split.test.images, split.test.labels));
  }

  // --- Data owner: classify 12 private images through the proxy layer.
  const data::Dataset queries = data::slice(split.test, 0, 12);
  const core::InferResult honest = engine.infer(queries, /*batch_size=*/4);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    correct += honest.labels[i] == queries.labels[i] ? 1 : 0;
  }
  std::printf("secure inference (all parties honest):\n");
  std::printf("  %zu/%zu predictions correct\n", correct, queries.size());
  std::printf("  %.2f s, %.2f MB exchanged (%.2f MB proxy-internal, "
              "%.2f MB with owners), %llu messages\n\n",
              honest.cost.wall_seconds, honest.cost.total_megabytes(),
              static_cast<double>(honest.cost.proxy_bytes) / (1 << 20),
              static_cast<double>(honest.cost.owner_bytes) / (1 << 20),
              static_cast<unsigned long long>(honest.cost.total_messages));

  // --- Same queries, but computing party P1 is now malicious.
  core::EngineConfig attacked_config = config;
  attacked_config.trunc_mode = core::TruncationMode::kMaskedOpen;
  attacked_config.byzantine_party = 1;
  attacked_config.byzantine.behavior =
      mpc::ByzantineConfig::Behavior::kConsistentCorruption;
  attacked_config.byzantine.probability = 0.5;
  core::TrustDdlEngine attacked(nn::mnist_mlp_spec(), attacked_config);
  attacked.reference_model() = std::move(engine.reference_model());

  const core::InferResult under_attack =
      attacked.infer(queries, /*batch_size=*/4);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    agree += under_attack.labels[i] == honest.labels[i] ? 1 : 0;
  }
  std::printf("secure inference (party P1 Byzantine, corrupting 50%% of "
              "openings):\n");
  std::printf("  %zu/%zu predictions identical to the honest run\n", agree,
              queries.size());
  std::printf("  honest parties detected and recovered: %zu share-copy "
              "authentication failures, %zu distance anomalies, %zu "
              "recovered openings\n",
              under_attack.cost.share_auth_failures,
              under_attack.cost.distance_anomalies,
              under_attack.cost.recovered_opens);
  std::printf("  the protocol never aborted — every query was answered "
              "(guaranteed output delivery).\n");
  return 0;
}
