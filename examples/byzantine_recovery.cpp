// Byzantine detection and recovery walkthrough.
//
// Replays the three misbehaviour cases of the paper's security proof
// (Proof 6.2) plus the coordinated-offset attack found during this
// reproduction (DESIGN.md §4), one robust opening each, and shows what
// every honest party observes and how it recovers.
//
// Build & run:  ./build/examples/byzantine_recovery
#include <cstdio>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "mpc/adversary.hpp"
#include "mpc/open.hpp"
#include "net/runtime.hpp"

using namespace trustddl;

namespace {

const char* kind_name(mpc::DetectionEvent::Kind kind) {
  using Kind = mpc::DetectionEvent::Kind;
  switch (kind) {
    case Kind::kCommitmentViolation:
      return "commitment violation";
    case Kind::kMissingMessage:
      return "missing message";
    case Kind::kDistanceAnomaly:
      return "distance anomaly";
    case Kind::kByzantineSuspected:
      return "byzantine suspected";
    case Kind::kShareAuthFailure:
      return "share-copy authentication failure";
    case Kind::kShareCopyConflict:
      return "share-copy conflict";
  }
  return "?";
}

void demonstrate(const char* title, mpc::ByzantineConfig config,
                 int byzantine_party) {
  std::printf("--- %s (Byzantine party: P%d) ---\n", title, byzantine_party);

  Rng rng(17);
  RingTensor secret(Shape{4});
  for (std::size_t i = 0; i < secret.size(); ++i) {
    secret[i] = rng.next_u64();
  }
  const auto views = mpc::share_secret(secret, rng);
  mpc::StandardAdversary adversary(config);

  net::NetworkConfig net_config;
  net_config.num_parties = 3;
  net_config.recv_timeout = std::chrono::milliseconds(250);
  net::Network network(net_config);
  std::array<mpc::PartyContext, 3> contexts;
  for (int party = 0; party < 3; ++party) {
    auto& ctx = contexts[static_cast<std::size_t>(party)];
    ctx.endpoint = network.endpoint(party);
    ctx.party = party;
  }
  contexts[static_cast<std::size_t>(byzantine_party)].adversary = &adversary;

  std::array<RingTensor, 3> results;
  net::run_parties(
      3,
      [&](net::PartyId party) {
        results[static_cast<std::size_t>(party)] = mpc::open_value(
            contexts[static_cast<std::size_t>(party)],
            views[static_cast<std::size_t>(party)]);
      },
      /*rethrow=*/false);

  for (int party = 0; party < 3; ++party) {
    if (party == byzantine_party) {
      continue;
    }
    const auto& ctx = contexts[static_cast<std::size_t>(party)];
    const bool correct = results[static_cast<std::size_t>(party)] == secret;
    std::printf("  honest P%d: opened the %s value; observed:", party,
                correct ? "CORRECT" : "WRONG");
    if (ctx.detections.events.empty()) {
      std::printf(" nothing unusual");
    }
    for (const auto& event : ctx.detections.events) {
      std::printf(" [%s%s%s]", kind_name(event.kind),
                  event.suspect >= 0 ? " by P" : "",
                  event.suspect >= 0
                      ? std::to_string(event.suspect).c_str()
                      : "");
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kError);  // keep stdout tidy
  std::printf("=== How TrustDDL detects and recovers from one Byzantine "
              "party ===\n\n");

  mpc::ByzantineConfig config;

  config.behavior = mpc::ByzantineConfig::Behavior::kCommitmentViolationGlobal;
  demonstrate("Case 1: commitment violated towards everyone", config, 1);

  config.behavior = mpc::ByzantineConfig::Behavior::kCommitmentViolationSingle;
  config.target_peer = 0;
  demonstrate("Case 2: commitment violated towards P0 only", config, 1);

  config.behavior = mpc::ByzantineConfig::Behavior::kConsistentCorruption;
  demonstrate("Case 3: consistently corrupted shares (hashes match)", config,
              2);

  config.behavior = mpc::ByzantineConfig::Behavior::kDropMessages;
  demonstrate("Silence: all messages dropped (crash or censorship)", config,
              0);

  config.behavior = mpc::ByzantineConfig::Behavior::kCoordinatedDelta;
  demonstrate(
      "Coordinated offset (beyond the paper; defeated by share-copy "
      "authentication)",
      config, 1);

  std::printf("In every case both honest parties finished with the correct "
              "value — TrustDDL's guaranteed output delivery.\n");
  return 0;
}
