// trustddl_owner: one data owner of a multi-owner robust training
// deployment started with `trustddl_party --task train-serve`.
//
// The owner is actor id >= 5 on the same TCP mesh as the parties.  It
// holds a private labelled shard (rows of the deterministic dataset
// with row % owners == index), and per submission samples a minibatch,
// secret-shares the fixed-point images and one-hot labels to the three
// computing parties (no party ever sees plaintext), and notifies the
// sequencer at the model owner.  All per-submission randomness derives
// from (owner seed, seq), so a restarted owner regenerates
// byte-identical submissions for any seq the hello ack asks for.
//
// Poisoning experiments run HERE, in the owner's data space — exactly
// the malicious-owner threat the service's trimmed-mean / median
// aggregation absorbs.
//
// Four-process session on localhost (3 parties + sequencer in 3
// processes, then 3 owners, one of them poisoning):
//
//   ./build/examples/trustddl_party --task train-serve --party-ids 1 &
//   ./build/examples/trustddl_party --task train-serve --party-ids 2 &
//   ./build/examples/trustddl_party --task train-serve --party-ids 0,4 &
//   ./build/examples/trustddl_owner --owner-index 0 &
//   ./build/examples/trustddl_owner --owner-index 1 &
//   ./build/examples/trustddl_owner --owner-index 2 --poison scale=10
//
// Flags:
//   --owner-index N      this owner's 0-based index [0]; the actor id
//                        is 5 + N
//   --owners N           total owners in the deployment [3] (must
//                        match the parties' --owners)
//   --port-base N        actor i listens on 127.0.0.1:(N+i)  [29500]
//   --peers LIST         explicit mesh: id=host:port,...; must cover
//                        ids 0,1,2,4 and this owner's own id
//   --listen HOST        bind host for the owner id [from the mesh]
//   --submissions N      lifetime submission bound [4]; a resumed
//                        owner continues from the hello ack's seq up
//                        to this bound
//   --batch-rows N       minibatch rows per submission [8]
//   --rows N             total training rows of the shared dataset
//                        [64] (must match the parties' --rows)
//   --model mlp|cnn|tiny-cnn   architecture [mlp] (must match parties)
//   --seed N             session seed [1] (ditto); this owner's stream
//                        seed is owner_base_seed(seed, index)
//   --data-seed N        dataset seed [7] (ditto)
//   --mnist-dir PATH     load the real MNIST idx files (ditto)
//   --poison SPEC        data poisoning: none, sign-flip, scale[=F]
//                        or label-flip [none]
//   --exit-after-submissions N   exit abruptly (no stop notice) after
//                        N submissions this session; 0 = run to the
//                        --submissions bound and stop cleanly.  Models
//                        a killed owner: the sequencer must degrade to
//                        quorum operation without it.
//   --hello-timeout-ms N wait for the sequencer's hello ack [30000]
//   --connect-timeout-ms N     mesh rendezvous budget [10000]
//   --trace-out FILE     write a JSONL span trace of this owner's
//                        submissions (for scripts/merge_traces.py)
//   --admin-port N       serve the introspection plane (/healthz,
//                        /metrics, /events, /status) on 127.0.0.1:N;
//                        0 picks an ephemeral port [off]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "core/roles.hpp"
#include "data/mnist_idx.hpp"
#include "data/synthetic_mnist.hpp"
#include "net/tcp_transport.hpp"
#include "nn/model_zoo.hpp"
#include "numeric/fixed_point.hpp"
#include "obs/admin_server.hpp"
#include "obs/health.hpp"
#include "obs/trace.hpp"
#include "train/harness.hpp"
#include "train/owner_client.hpp"
#include "train/wire.hpp"

using namespace trustddl;

namespace {

struct Options {
  int owner_index = 0;
  int owners = 3;
  int port_base = 29500;
  std::string peers_text;
  std::string listen_host;
  std::size_t submissions = 4;
  std::size_t batch_rows = 8;
  std::size_t rows = 64;
  std::string model = "mlp";
  std::uint64_t seed = 1;
  std::uint64_t data_seed = 7;
  std::string mnist_dir;
  std::string poison = "none";
  std::size_t exit_after_submissions = 0;
  int hello_timeout_ms = 30000;
  int connect_timeout_ms = 10000;
  std::string trace_out;
  int admin_port = -1;
};

[[noreturn]] void usage_error(const std::string& reason) {
  std::fprintf(stderr, "trustddl_owner: %s\n(see the header comment of "
               "examples/trustddl_owner.cpp for flags)\n",
               reason.c_str());
  std::exit(64);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      usage_error(std::string("missing value for ") + argv[i]);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--owner-index") {
      opt.owner_index = std::atoi(value(i).c_str());
    } else if (arg == "--owners") {
      opt.owners = std::atoi(value(i).c_str());
    } else if (arg == "--port-base") {
      opt.port_base = std::atoi(value(i).c_str());
    } else if (arg == "--peers") {
      opt.peers_text = value(i);
    } else if (arg == "--listen") {
      opt.listen_host = value(i);
    } else if (arg == "--submissions") {
      opt.submissions = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--batch-rows") {
      opt.batch_rows = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--rows") {
      opt.rows = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--model") {
      opt.model = value(i);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(i).c_str(), nullptr, 10);
    } else if (arg == "--data-seed") {
      opt.data_seed = std::strtoull(value(i).c_str(), nullptr, 10);
    } else if (arg == "--mnist-dir") {
      opt.mnist_dir = value(i);
    } else if (arg == "--poison") {
      opt.poison = value(i);
    } else if (arg == "--exit-after-submissions") {
      opt.exit_after_submissions =
          static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--hello-timeout-ms") {
      opt.hello_timeout_ms = std::atoi(value(i).c_str());
    } else if (arg == "--connect-timeout-ms") {
      opt.connect_timeout_ms = std::atoi(value(i).c_str());
    } else if (arg == "--trace-out") {
      opt.trace_out = value(i);
    } else if (arg == "--admin-port") {
      opt.admin_port = std::atoi(value(i).c_str());
    } else {
      usage_error("unknown flag " + arg);
    }
  }
  if (opt.owners < 1) {
    usage_error("--owners must be >= 1");
  }
  if (opt.owner_index < 0 || opt.owner_index >= opt.owners) {
    usage_error("--owner-index must be in [0, owners)");
  }
  if (opt.submissions < 1 || opt.batch_rows < 1 || opt.rows < 1) {
    usage_error("--submissions/--batch-rows/--rows must be >= 1");
  }
  return opt;
}

nn::ModelSpec spec_for(const std::string& name) {
  if (name == "mlp") {
    return nn::mnist_mlp_spec();
  }
  if (name == "cnn") {
    return nn::mnist_cnn_spec();
  }
  if (name == "tiny-cnn") {
    return nn::tiny_cnn_spec();
  }
  usage_error("--model must be mlp, cnn or tiny-cnn");
}

std::vector<std::string> mesh_addresses(const Options& opt, int owner_id,
                                        int num_actors) {
  std::vector<std::string> addresses(static_cast<std::size_t>(num_actors));
  if (opt.peers_text.empty()) {
    for (int id = 0; id < num_actors; ++id) {
      addresses[static_cast<std::size_t>(id)] =
          "127.0.0.1:" + std::to_string(opt.port_base + id);
    }
    return addresses;
  }
  std::size_t start = 0;
  const std::string& text = opt.peers_text;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      usage_error("peer entry '" + item + "' is not id=host:port");
    }
    const int id = std::atoi(item.substr(0, eq).c_str());
    if (id < 0 || id >= num_actors) {
      usage_error("peer id out of range in '" + item + "'");
    }
    addresses[static_cast<std::size_t>(id)] = item.substr(eq + 1);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  for (const int id : {0, 1, 2, core::kModelOwner, owner_id}) {
    if (addresses[static_cast<std::size_t>(id)].empty()) {
      usage_error("--peers is missing actor id " + std::to_string(id));
    }
  }
  return addresses;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const int owner_id = static_cast<int>(train::kFirstOwnerId) +
                       opt.owner_index;
  const int num_actors = core::kNumActors + opt.owners;

  const nn::ModelSpec spec = spec_for(opt.model);

  // Same dataset derivation as trustddl_party / the in-memory harness,
  // so a restarted owner (or the party-side --check) sees the exact
  // same shard.
  data::SyntheticMnistConfig data_config;
  data_config.train_count = opt.rows;
  data_config.test_count = 1;
  data_config.seed = opt.data_seed;
  const auto split = data::load_mnist_or_synthetic(opt.mnist_dir, data_config);
  const data::Dataset shard =
      train::owner_shard(split.train, opt.owner_index, opt.owners);

  const std::vector<std::string> addresses =
      mesh_addresses(opt, owner_id, num_actors);

  net::NetworkConfig net_config;
  net_config.num_parties = num_actors;
  net_config.connect.connect_timeout =
      std::chrono::milliseconds(opt.connect_timeout_ms);

  if (!opt.trace_out.empty()) {
    obs::Tracer::global().open(opt.trace_out);
  }

  // The owner's introspection plane uses the default registry-only
  // /metrics provider: an owner has no engine transports or detection
  // logs, so the live registry snapshot is the whole story.
  std::unique_ptr<obs::AdminServer> admin;
  if (opt.admin_port >= 0) {
    obs::AdminOptions admin_options;
    admin_options.port = opt.admin_port;
    admin = std::make_unique<obs::AdminServer>(admin_options);
    admin->start();
    obs::HealthState::global().set_identity(
        "data-owner-" + std::to_string(owner_id), "train-owner");
    std::printf("admin endpoint on 127.0.0.1:%d\n", admin->port());
  }

  try {
    std::string listen = addresses[static_cast<std::size_t>(owner_id)];
    if (!opt.listen_host.empty()) {
      listen = opt.listen_host + ":" +
               std::to_string(net::parse_address(listen).port);
    }
    std::printf("[owner %d] listening on %s (%zu shard rows)\n", owner_id,
                listen.c_str(), shard.size());
    net::TcpTransport transport(static_cast<net::PartyId>(owner_id), listen,
                                net_config);
    transport.connect(addresses,
                      {0, 1, 2, static_cast<net::PartyId>(core::kModelOwner)});
    std::printf("[owner %d] connected to parties and sequencer\n", owner_id);

    train::OwnerOptions options;
    options.seed = train::owner_base_seed(opt.seed, opt.owner_index);
    options.classes = spec.classes;
    options.batch_rows = opt.batch_rows;
    options.frac_bits = fx::kDefaultFracBits;
    options.poison = train::parse_poison_spec(opt.poison);
    options.hello_timeout = std::chrono::milliseconds(opt.hello_timeout_ms);
    train::TrainingOwner owner(
        transport.endpoint(static_cast<net::PartyId>(owner_id)), options);

    if (options.poison.active()) {
      std::printf("[owner %d] POISONING: %s\n", owner_id,
                  train::poison_mode_name(options.poison.mode));
    }

    std::uint64_t first = owner.hello();
    std::printf("[owner %d] joined; resuming at seq %llu\n", owner_id,
                static_cast<unsigned long long>(first));
    std::size_t made = 0;
    std::size_t rows = 0;
    for (std::uint64_t seq = first; seq < opt.submissions; ++seq) {
      rows += owner.submit(seq, shard);
      obs::HealthState::global().note_progress("train.last_submission", seq);
      ++made;
      if (opt.exit_after_submissions != 0 &&
          made >= opt.exit_after_submissions) {
        // Abrupt exit: no stop notice, no drain — the sequencer sees a
        // silent owner and must mark it dormant.
        std::printf("[owner %d] exiting abruptly after %zu submissions\n",
                    owner_id, made);
        transport.shutdown();
        return 0;
      }
    }
    owner.stop(opt.submissions);
    std::printf("[owner %d] done: %zu submissions (%zu rows), stopped at "
                "seq %llu\n",
                owner_id, made, rows,
                static_cast<unsigned long long>(opt.submissions));

    if (!opt.trace_out.empty()) {
      obs::Tracer::global().close();
    }
    if (admin) {
      admin->stop();
    }

    // Let the stop notice drain before closing the sockets.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    transport.shutdown();
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trustddl_owner: %s\n", error.what());
    return 1;
  }
}
