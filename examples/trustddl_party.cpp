// trustddl_party: run one (or several) of TrustDDL's five actors as
// an OS process, communicating with its peers over real TCP sockets.
//
// Every process derives the model, the synthetic dataset and the batch
// schedule deterministically from --seed/--data-seed, so a multi-
// process deployment reconstructs exactly the outputs of the
// in-process engine, bit for bit.  The data owner can assert this with
// --check, which re-runs the same workload on the in-memory engine and
// compares results.
//
// Three-process secure inference on localhost:
//
//   ./build/examples/trustddl_party --party-ids 1 &
//   ./build/examples/trustddl_party --party-ids 2 &
//   ./build/examples/trustddl_party --party-ids 0,3,4 --check
//
// Flags:
//   --party-ids LIST     comma-separated actor ids hosted by this
//                        process (0-2 computing parties, 3 data owner,
//                        4 model owner); --party-id is an alias
//   --port-base N        party i listens on 127.0.0.1:(N+i)  [29500]
//   --peers LIST         explicit mesh: id=host:port,... for all 5 ids
//                        (overrides --port-base)
//   --listen HOST        bind host for hosted ids [host from the mesh]
//   --task infer|train|malicious-inference|serve   workload [infer];
//                        malicious-inference runs infer with computing
//                        party 1 mounting consistent-corruption attacks
//                        (Case 3) against every opening; serve runs the
//                        inference serving layer (parties 0-2 + model
//                        owner 4; clients attach via trustddl_client)
//   --clients N          serve: number of client actors [1]; clients
//                        occupy ids 5..5+N-1 and the data owner id 3
//                        is unused
//   --serve-max-batch N  serve: flush a batch at this many rows [8]
//   --serve-window-ms N  serve: max wait before a partial batch is
//                        flushed [20]
//   --serve-queue-cap N  serve: bounded-queue capacity; requests
//                        beyond it are rejected (backpressure) [64]
//   --serve-corrupt-results    serve: hosted computing parties return
//                        corrupted result shares (Byzantine serving-
//                        edge fault injection; clients must out-vote)
//   --metrics-out PATH   write the observability export (JSON, schema
//                        trustddl.metrics.v1: metrics registry,
//                        detection events, traffic matrix, cost) after
//                        the run; enables metrics collection
//   --trace-out PATH     write a protocol-phase trace (JSONL spans)
//   --triple-prefetch    offline/online split: prefetch preprocessing
//                        material into shape-keyed triple stores ahead
//                        of the online phase (DESIGN.md §10)
//   --triple-low-water F producer refill trigger as a fraction of each
//                        store's target depth [0.5]
//   --triple-store-dir PATH    persist/restore triple stores under
//                        this directory (per party and per mode;
//                        survives process restarts)
//   --mnist-dir PATH     load the real MNIST idx files from this
//                        directory (train/t10k images + labels);
//                        falls back to the synthetic substitute when
//                        absent or incomplete
//   --model mlp|cnn|tiny-cnn   architecture [mlp]
//   --images N           inference queries / test rows [12]
//   --rows N             training rows [64]
//   --batch N            batch size [4]
//   --epochs N           training epochs [1]
//   --lr F               learning rate [0.3]
//   --mode malicious|hbc security mode [malicious]
//   --batch-openings on|off    deferred-opening scheduler [on]
//   --seed N             model/protocol seed [1]
//   --data-seed N        synthetic-dataset seed [7]
//   --check              verify against an in-memory run (data owner
//                        for infer, model owner for train); exits 2 on
//                        mismatch
//   --connect-timeout-ms N     mesh rendezvous budget [10000]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.hpp"
#include "core/actors.hpp"
#include "core/engine.hpp"
#include "core/metrics_export.hpp"
#include "data/mnist_idx.hpp"
#include "data/synthetic_mnist.hpp"
#include "net/tcp_transport.hpp"
#include "nn/loss.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

using namespace trustddl;

namespace {

struct Options {
  std::vector<int> party_ids;
  std::string listen_host;  // empty: use the host from the mesh entry
  int port_base = 29500;
  std::string peers_text;          // raw --peers value (parsed after
                                   // --task/--clients are known)
  std::vector<std::string> peers;  // [actor id] -> host:port
  std::string task = "infer";
  int clients = 1;
  std::size_t serve_max_batch = 8;
  int serve_window_ms = 20;
  std::size_t serve_queue_cap = 64;
  bool serve_corrupt_results = false;
  std::string model = "mlp";
  std::size_t images = 12;
  std::size_t rows = 64;
  std::size_t batch = 4;
  std::size_t epochs = 1;
  double learning_rate = 0.3;
  std::string mode = "malicious";
  bool batch_openings = true;
  std::uint64_t seed = 1;
  std::uint64_t data_seed = 7;
  bool check = false;
  int connect_timeout_ms = 10000;
  std::string metrics_out;
  std::string trace_out;
  bool triple_prefetch = false;
  double triple_low_water = 0.5;
  std::string triple_store_dir;
  std::string mnist_dir;
};

[[noreturn]] void usage_error(const std::string& reason) {
  std::fprintf(stderr, "trustddl_party: %s\n(see the header comment of "
               "examples/trustddl_party.cpp for flags)\n",
               reason.c_str());
  std::exit(64);
}

std::vector<int> parse_id_list(const std::string& text) {
  std::vector<int> ids;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (item.empty()) {
      usage_error("empty entry in id list '" + text + "'");
    }
    const int id = std::atoi(item.c_str());
    if (id < 0 || id >= core::kNumActors) {
      usage_error("party id out of range: " + item);
    }
    ids.push_back(id);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return ids;
}

/// "id=host:port,id=host:port,...": fills a vector indexed by actor
/// id.  Which ids must be present depends on the task (serve never
/// uses the data owner, and a party process never dials client slots),
/// so the caller validates completeness.
std::vector<std::string> parse_peer_list(const std::string& text,
                                         int num_actors) {
  std::vector<std::string> addresses(static_cast<std::size_t>(num_actors));
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      usage_error("peer entry '" + item + "' is not id=host:port");
    }
    const int id = std::atoi(item.substr(0, eq).c_str());
    if (id < 0 || id >= num_actors) {
      usage_error("peer id out of range in '" + item + "'");
    }
    addresses[static_cast<std::size_t>(id)] = item.substr(eq + 1);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return addresses;
}

/// The single source of truth for workload names: validation and the
/// usage string both derive from this table, so adding a task cannot
/// leave the error message stale.
constexpr const char* kTaskNames[] = {"infer", "train", "malicious-inference",
                                      "serve"};

bool known_task(const std::string& task) {
  return std::any_of(std::begin(kTaskNames), std::end(kTaskNames),
                     [&](const char* name) { return task == name; });
}

std::string task_usage() {
  std::string text;
  const std::size_t count = std::size(kTaskNames);
  for (std::size_t i = 0; i < count; ++i) {
    if (i > 0) {
      text += i + 1 == count ? " or " : ", ";
    }
    text += kTaskNames[i];
  }
  return text;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      usage_error(std::string("missing value for ") + argv[i]);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--party-ids" || arg == "--party-id") {
      opt.party_ids = parse_id_list(value(i));
    } else if (arg == "--port-base") {
      opt.port_base = std::atoi(value(i).c_str());
    } else if (arg == "--peers") {
      opt.peers_text = value(i);
    } else if (arg == "--clients") {
      opt.clients = std::atoi(value(i).c_str());
    } else if (arg == "--serve-max-batch") {
      opt.serve_max_batch =
          static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--serve-window-ms") {
      opt.serve_window_ms = std::atoi(value(i).c_str());
    } else if (arg == "--serve-queue-cap") {
      opt.serve_queue_cap =
          static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--serve-corrupt-results") {
      opt.serve_corrupt_results = true;
    } else if (arg == "--listen") {
      opt.listen_host = value(i);
    } else if (arg == "--task") {
      opt.task = value(i);
    } else if (arg == "--model") {
      opt.model = value(i);
    } else if (arg == "--images") {
      opt.images = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--rows") {
      opt.rows = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--batch") {
      opt.batch = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--epochs") {
      opt.epochs = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--lr") {
      opt.learning_rate = std::atof(value(i).c_str());
    } else if (arg == "--mode") {
      opt.mode = value(i);
    } else if (arg == "--batch-openings") {
      opt.batch_openings = value(i) == "on";
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(i).c_str(), nullptr, 10);
    } else if (arg == "--data-seed") {
      opt.data_seed = std::strtoull(value(i).c_str(), nullptr, 10);
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--connect-timeout-ms") {
      opt.connect_timeout_ms = std::atoi(value(i).c_str());
    } else if (arg == "--metrics-out") {
      opt.metrics_out = value(i);
    } else if (arg == "--trace-out") {
      opt.trace_out = value(i);
    } else if (arg == "--triple-prefetch") {
      opt.triple_prefetch = true;
    } else if (arg == "--triple-low-water") {
      opt.triple_low_water = std::atof(value(i).c_str());
    } else if (arg == "--triple-store-dir") {
      opt.triple_store_dir = value(i);
    } else if (arg == "--mnist-dir") {
      opt.mnist_dir = value(i);
    } else {
      usage_error("unknown flag " + arg);
    }
  }
  if (opt.party_ids.empty()) {
    usage_error("--party-ids is required");
  }
  if (!known_task(opt.task)) {
    usage_error("--task must be " + task_usage());
  }
  if (opt.task == "malicious-inference" && opt.mode != "malicious") {
    usage_error("--task malicious-inference requires --mode malicious");
  }
  if (opt.mode != "malicious" && opt.mode != "hbc") {
    usage_error("--mode must be malicious or hbc");
  }
  if (opt.images < 1 || opt.rows < 1 || opt.batch < 1 || opt.epochs < 1) {
    usage_error("--images/--rows/--batch/--epochs must be >= 1");
  }
  if (opt.triple_low_water <= 0.0 || opt.triple_low_water > 1.0) {
    usage_error("--triple-low-water must be in (0, 1]");
  }
  const bool serving = opt.task == "serve";
  if (serving) {
    if (opt.clients < 1) {
      usage_error("--clients must be >= 1");
    }
    if (opt.serve_max_batch < 1 || opt.serve_queue_cap < 1 ||
        opt.serve_window_ms < 0) {
      usage_error("--serve-max-batch/--serve-queue-cap must be >= 1 and "
                  "--serve-window-ms >= 0");
    }
    for (const int id : opt.party_ids) {
      if (id == core::kDataOwner) {
        usage_error("--task serve has no data-owner actor (id 3)");
      }
    }
  }
  // Peers are parsed only once the task is known: serving adds client
  // actor ids and drops the data owner from the required set (client
  // slots may also stay empty here — a party process accepts client
  // connections, it never dials them).
  const int num_actors = core::kNumActors + (serving ? opt.clients : 0);
  if (!opt.peers_text.empty()) {
    opt.peers = parse_peer_list(opt.peers_text, num_actors);
    for (int id = 0; id < core::kNumActors; ++id) {
      if (serving && id == core::kDataOwner) {
        continue;
      }
      if (opt.peers[static_cast<std::size_t>(id)].empty()) {
        usage_error("--peers is missing actor id " + std::to_string(id));
      }
    }
  }
  return opt;
}

const char* role_name(int id) {
  switch (id) {
    case core::kDataOwner:
      return "data-owner";
    case core::kModelOwner:
      return "model-owner";
    default:
      return "computing-party";
  }
}

nn::ModelSpec spec_for(const std::string& name) {
  if (name == "mlp") {
    return nn::mnist_mlp_spec();
  }
  if (name == "cnn") {
    return nn::mnist_cnn_spec();
  }
  if (name == "tiny-cnn") {
    return nn::tiny_cnn_spec();
  }
  usage_error("--model must be mlp, cnn or tiny-cnn");
}

// Per-process traffic report (each frame metered once at its sender,
// so summing the rows across processes reproduces the in-memory
// engine's totals).
void print_traffic(
    const std::vector<std::unique_ptr<net::TcpTransport>>& transports) {
  for (const auto& transport : transports) {
    const net::TrafficSnapshot traffic = transport->traffic();
    std::uint64_t sent_bytes = 0;
    std::uint64_t sent_messages = 0;
    const auto self = static_cast<std::size_t>(transport->self());
    for (const auto& link : traffic.links[self]) {
      sent_bytes += link.bytes;
      sent_messages += link.messages;
    }
    std::printf("[party %d] sent %llu messages, %.2f MB\n",
                static_cast<int>(transport->self()),
                static_cast<unsigned long long>(sent_messages),
                static_cast<double>(sent_bytes) / (1 << 20));
  }
}

// Observability export for THIS process's hosted actors: the traffic
// matrices of the hosted transports merged cell-wise (each single-
// transport total counts the sender row only, so the merge keeps
// once-per-message semantics), detection tallies from the hosted
// computing parties, opening rounds from the lowest-id hosted honest
// computing party (the counters are identical at every honest party —
// the protocol is SPMD).  `party_logs` is indexed like `transports`.
void write_process_export(
    const Options& opt,
    const std::vector<std::unique_ptr<net::TcpTransport>>& transports,
    const std::vector<mpc::DetectionLog>& party_logs, double wall_seconds,
    int num_actors, int byzantine_party) {
  if (opt.metrics_out.empty()) {
    return;
  }
  net::TrafficSnapshot traffic;
  traffic.links.assign(static_cast<std::size_t>(num_actors),
                       std::vector<net::LinkMetrics>(
                           static_cast<std::size_t>(num_actors)));
  for (const auto& transport : transports) {
    const net::TrafficSnapshot local = transport->traffic();
    for (std::size_t i = 0; i < local.links.size(); ++i) {
      for (std::size_t j = 0; j < local.links[i].size(); ++j) {
        traffic.links[i][j].bytes += local.links[i][j].bytes;
        traffic.links[i][j].messages += local.links[i][j].messages;
      }
    }
    traffic.total_bytes += local.total_bytes;
    traffic.total_messages += local.total_messages;
  }

  core::CostReport cost;
  cost.wall_seconds = wall_seconds;
  cost.total_bytes = traffic.total_bytes;
  cost.total_messages = traffic.total_messages;
  for (int i = 0; i < num_actors; ++i) {
    for (int j = 0; j < num_actors; ++j) {
      const auto bytes = traffic.links[static_cast<std::size_t>(i)]
                                      [static_cast<std::size_t>(j)]
                                          .bytes;
      if (i < core::kComputingParties && j < core::kComputingParties) {
        cost.proxy_bytes += bytes;
      } else {
        cost.owner_bytes += bytes;
      }
    }
  }
  int rounds_party = num_actors;
  for (std::size_t i = 0; i < transports.size(); ++i) {
    const int id = static_cast<int>(transports[i]->self());
    if (id >= core::kComputingParties) {
      continue;
    }
    const mpc::DetectionLog& log = party_logs[i];
    cost.commitment_violations +=
        log.count(mpc::DetectionEvent::Kind::kCommitmentViolation);
    cost.distance_anomalies +=
        log.count(mpc::DetectionEvent::Kind::kDistanceAnomaly);
    cost.share_auth_failures +=
        log.count(mpc::DetectionEvent::Kind::kShareAuthFailure);
    cost.recovered_opens += log.recovered_opens;
    if (id != byzantine_party && id < rounds_party) {
      rounds_party = id;
      cost.opening_rounds = log.opens;
      cost.values_opened = log.values_opened;
    }
  }

  core::write_metrics_export(opt.metrics_out,
                             obs::MetricsRegistry::global().snapshot(),
                             obs::EventLog::global().snapshot(), traffic,
                             cost);
  std::printf("metrics export written to %s\n", opt.metrics_out.c_str());
}

// --task serve: host any of parties 0-2 and the model owner.  Clients
// (ids >= serve::kFirstClientId) attach with trustddl_client; the data
// owner (id 3) does not participate.  The mesh is a subset mesh —
// parties and owner interconnect fully and accept client connections,
// but never dial client address slots.
int run_serve(const Options& opt, const core::EngineConfig& config,
              const nn::ModelSpec& spec, nn::Sequential& model,
              std::size_t param_count) {
  const int num_actors = core::kNumActors + opt.clients;

  std::vector<std::string> addresses = opt.peers;
  if (addresses.empty()) {
    for (int id = 0; id < num_actors; ++id) {
      addresses.push_back("127.0.0.1:" + std::to_string(opt.port_base + id));
    }
  }

  net::NetworkConfig net_config;
  net_config.num_parties = num_actors;
  net_config.connect.connect_timeout =
      std::chrono::milliseconds(opt.connect_timeout_ms);

  serve::ServeConfig serve_config;
  serve_config.max_batch_rows = opt.serve_max_batch;
  serve_config.batch_window = std::chrono::milliseconds(opt.serve_window_ms);
  serve_config.queue_capacity = opt.serve_queue_cap;

  try {
    std::vector<std::unique_ptr<net::TcpTransport>> transports;
    for (const int id : opt.party_ids) {
      std::string listen = addresses[static_cast<std::size_t>(id)];
      if (!opt.listen_host.empty()) {
        listen = opt.listen_host + ":" +
                 std::to_string(net::parse_address(listen).port);
      }
      std::printf("[party %d] %s listening on %s\n", id, role_name(id),
                  listen.c_str());
      transports.push_back(std::make_unique<net::TcpTransport>(
          static_cast<net::PartyId>(id), listen, net_config));
    }

    // Serving topology: party p links the other parties, the owner and
    // every client; the owner links the parties and every client.
    const auto peers_for = [&](int id) {
      std::vector<net::PartyId> peers;
      for (int p = 0; p < core::kComputingParties; ++p) {
        if (p != id) {
          peers.push_back(static_cast<net::PartyId>(p));
        }
      }
      if (id != core::kModelOwner) {
        peers.push_back(core::kModelOwner);
      }
      for (int c = 0; c < opt.clients; ++c) {
        peers.push_back(static_cast<net::PartyId>(serve::kFirstClientId + c));
      }
      return peers;
    };
    {
      std::vector<std::thread> dialers;
      std::vector<std::exception_ptr> errors(transports.size());
      for (std::size_t i = 0; i < transports.size(); ++i) {
        dialers.emplace_back([&, i] {
          try {
            transports[i]->connect(
                addresses, peers_for(static_cast<int>(transports[i]->self())));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      for (auto& dialer : dialers) {
        dialer.join();
      }
      for (const auto& error : errors) {
        if (error) {
          std::rethrow_exception(error);
        }
      }
    }
    std::printf("serve mesh connected (%zu local actor%s, %d client%s)\n",
                transports.size(), transports.size() == 1 ? "" : "s",
                opt.clients, opt.clients == 1 ? "" : "s");

    std::vector<mpc::DetectionLog> party_logs(transports.size());
    Stopwatch watch;
    std::vector<std::thread> bodies;
    std::vector<std::exception_ptr> errors(transports.size());
    for (std::size_t i = 0; i < transports.size(); ++i) {
      const int id = static_cast<int>(transports[i]->self());
      bodies.emplace_back([&, id, i] {
        try {
          net::Endpoint endpoint =
              transports[i]->endpoint(static_cast<net::PartyId>(id));
          if (id == core::kModelOwner) {
            serve::SchedulerStats stats;
            serve::serve_model_owner_body(spec, config, model, endpoint,
                                          serve_config, opt.clients, &stats);
            std::printf(
                "[party %d] serve done: %llu admitted = %llu completed + "
                "%llu rejected + %llu deadline-missed (%llu batches, "
                "%llu rows)\n",
                id, static_cast<unsigned long long>(stats.admitted),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.deadline_missed),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.batched_rows));
          } else {
            serve::ServerOptions server_options;
            server_options.serve = serve_config;
            server_options.corrupt_results = opt.serve_corrupt_results;
            std::size_t batches = 0;
            party_logs[i] = serve::serve_computing_party_body(
                spec, config, param_count, id, endpoint, server_options,
                &batches);
            std::printf("[party %d] serve done: %zu batch%s executed\n", id,
                        batches, batches == 1 ? "" : "es");
          }
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (auto& body : bodies) {
      body.join();
    }
    for (std::size_t i = 0; i < transports.size(); ++i) {
      if (errors[i]) {
        std::rethrow_exception(errors[i]);
      }
    }

    print_traffic(transports);
    write_process_export(opt, transports, party_logs, watch.elapsed_seconds(),
                         num_actors, config.byzantine_party);
    if (!opt.trace_out.empty()) {
      obs::Tracer::global().close();
    }

    // Let in-flight frames from peers drain before tearing the
    // sockets down (a client's last result ack may still be in
    // transit).
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    for (auto& transport : transports) {
      transport->shutdown();
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trustddl_party: %s\n", error.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  // --- Deterministic shared state: every process derives the same
  // configuration, model and batch schedule from the flags alone.
  core::EngineConfig config;
  config.mode = opt.mode == "hbc" ? mpc::SecurityMode::kHonestButCurious
                                  : mpc::SecurityMode::kMalicious;
  config.batch_openings = opt.batch_openings;
  config.seed = opt.seed;
  config.triple_prefetch = opt.triple_prefetch;
  config.triple_low_water = opt.triple_low_water;
  config.triple_store_dir = opt.triple_store_dir;
  // Processes start at different times; give the model owner's
  // collective ops more slack than the in-process default.
  config.collect_timeout = std::chrono::milliseconds(2000);

  const bool malicious_task = opt.task == "malicious-inference";
  if (malicious_task) {
    // Computing party 1 mounts consistent-corruption (Case 3) attacks:
    // commitment-consistent but corrupted shares, caught by share-copy
    // authentication at each honest observer (one attributable
    // share_auth_failure per attacked opening).  Masked-open rescaling
    // is mandatory under an active adversary — share-local truncation
    // would let the honest parties' states drift apart (DESIGN.md §4).
    config.byzantine_party = 1;
    config.byzantine.behavior =
        mpc::ByzantineConfig::Behavior::kConsistentCorruption;
    config.trunc_mode = mpc::TruncationMode::kMaskedOpen;
  }

  // Telemetry: arm the sinks before any actor runs so every span,
  // counter and detection event of this process's actors is captured.
  if (!opt.metrics_out.empty()) {
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::global().reset();
  }
  if (!opt.trace_out.empty()) {
    obs::Tracer::global().open(opt.trace_out);
  }
  if (!opt.metrics_out.empty() || !opt.trace_out.empty()) {
    obs::EventLog::global().clear();
  }

  const nn::ModelSpec spec = spec_for(opt.model);
  Rng model_rng(config.seed);
  nn::Sequential model = nn::build_model(spec, model_rng);
  const std::size_t param_count = model.parameters().size();

  if (opt.task == "serve") {
    // The serving workload has no dataset or jobs of its own — clients
    // bring the inputs.  It gets its own driver with the larger actor
    // space and subset-mesh rendezvous.
    return run_serve(opt, config, spec, model, param_count);
  }

  data::SyntheticMnistConfig data_config;
  data_config.train_count = opt.rows;
  data_config.test_count = opt.images;
  data_config.seed = opt.data_seed;
  const auto split =
      data::load_mnist_or_synthetic(opt.mnist_dir, data_config);
  if (!opt.mnist_dir.empty() && !data::mnist_files_present(opt.mnist_dir)) {
    std::fprintf(stderr,
                 "trustddl_party: %s is missing MNIST idx files; using the "
                 "synthetic substitute\n",
                 opt.mnist_dir.c_str());
  }
  const data::Dataset sample =
      data::slice(split.test, 0, std::min(opt.images, split.test.size()));

  core::TrainOptions train_options;
  train_options.epochs = opt.epochs;
  train_options.batch_size = opt.batch;
  train_options.learning_rate = opt.learning_rate;

  const bool training = opt.task == "train";
  std::unique_ptr<core::InferJob> infer_job;
  std::unique_ptr<core::TrainJob> train_job;
  if (training) {
    train_job = std::make_unique<core::TrainJob>(core::make_train_job(
        spec, config, train_options, split.train, param_count));
  } else {
    infer_job = std::make_unique<core::InferJob>(
        core::make_infer_job(spec, config, param_count, sample, opt.batch));
  }

  // --- Mesh addresses: explicit --peers, or 127.0.0.1:(base+id).
  std::vector<std::string> addresses = opt.peers;
  if (addresses.empty()) {
    for (int id = 0; id < core::kNumActors; ++id) {
      addresses.push_back("127.0.0.1:" +
                          std::to_string(opt.port_base + id));
    }
  }

  net::NetworkConfig net_config;
  net_config.num_parties = core::kNumActors;
  net_config.connect.connect_timeout =
      std::chrono::milliseconds(opt.connect_timeout_ms);

  try {
    // Bind every hosted id before dialing anyone, then rendezvous
    // concurrently: each connect() blocks until that id's mesh is up.
    std::vector<std::unique_ptr<net::TcpTransport>> transports;
    for (const int id : opt.party_ids) {
      std::string listen = addresses[static_cast<std::size_t>(id)];
      if (!opt.listen_host.empty()) {
        listen = opt.listen_host + ":" +
                 std::to_string(net::parse_address(listen).port);
      }
      std::printf("[party %d] %s listening on %s\n", id, role_name(id),
                  listen.c_str());
      transports.push_back(std::make_unique<net::TcpTransport>(
          static_cast<net::PartyId>(id), listen, net_config));
    }
    {
      std::vector<std::thread> dialers;
      std::vector<std::exception_ptr> errors(transports.size());
      for (std::size_t i = 0; i < transports.size(); ++i) {
        dialers.emplace_back([&, i] {
          try {
            transports[i]->connect(addresses);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      for (auto& dialer : dialers) {
        dialer.join();
      }
      for (const auto& error : errors) {
        if (error) {
          std::rethrow_exception(error);
        }
      }
    }
    std::printf("mesh connected (%zu local actor%s)\n", transports.size(),
                transports.size() == 1 ? "" : "s");

    // --- Run the hosted actor bodies, one thread per id.
    std::unique_ptr<core::ModelOwnerService> service;
    for (const auto& transport : transports) {
      if (transport->self() == core::kModelOwner) {
        service = std::make_unique<core::ModelOwnerService>(
            transport->endpoint(core::kModelOwner),
            core::make_owner_service_config(config, training));
      }
    }

    // Protocol-level adversary for the hosted Byzantine party (if
    // any); make_party_context attaches it only at that party.
    std::unique_ptr<mpc::StandardAdversary> adversary;
    if (config.byzantine_party >= 0) {
      adversary = std::make_unique<mpc::StandardAdversary>(config.byzantine);
    }

    std::vector<mpc::DetectionLog> party_logs(transports.size());
    Stopwatch watch;

    std::vector<std::size_t> labels;
    std::vector<std::thread> bodies;
    std::vector<std::exception_ptr> errors(transports.size());
    for (std::size_t i = 0; i < transports.size(); ++i) {
      const int id = static_cast<int>(transports[i]->self());
      bodies.emplace_back([&, id, i] {
        try {
          net::Endpoint endpoint =
              transports[i]->endpoint(static_cast<net::PartyId>(id));
          if (id == core::kModelOwner) {
            if (training) {
              core::train_model_owner_body(*train_job, endpoint, model,
                                           *service);
            } else {
              core::infer_model_owner_body(*infer_job, endpoint, model,
                                           *service);
            }
          } else if (id == core::kDataOwner) {
            if (training) {
              core::train_data_owner_body(*train_job, endpoint);
            } else {
              labels = core::infer_data_owner_body(*infer_job, endpoint);
            }
          } else {
            const mpc::DetectionLog log =
                training ? core::train_computing_party_body(
                               *train_job, id, endpoint, adversary.get())
                         : core::infer_computing_party_body(
                               *infer_job, id, endpoint, adversary.get());
            std::printf("[party %d] done: %llu opening rounds, %zu "
                        "anomalies detected\n",
                        id, static_cast<unsigned long long>(log.opens),
                        log.events.size());
            party_logs[i] = log;
          }
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (auto& body : bodies) {
      body.join();
    }
    for (std::size_t i = 0; i < transports.size(); ++i) {
      if (errors[i]) {
        std::rethrow_exception(errors[i]);
      }
    }

    print_traffic(transports);
    write_process_export(opt, transports, party_logs, watch.elapsed_seconds(),
                         core::kNumActors, config.byzantine_party);
    if (!opt.trace_out.empty()) {
      obs::Tracer::global().close();
    }

    int exit_code = 0;
    const bool hosts_data_owner =
        std::count(opt.party_ids.begin(), opt.party_ids.end(),
                   static_cast<int>(core::kDataOwner)) > 0;
    const bool hosts_model_owner =
        std::count(opt.party_ids.begin(), opt.party_ids.end(),
                   static_cast<int>(core::kModelOwner)) > 0;

    if (!training && hosts_data_owner) {
      std::printf("[party %d] predicted labels:", core::kDataOwner);
      for (std::size_t i = 0; i < labels.size() && i < 24; ++i) {
        std::printf(" %zu", labels[i]);
      }
      std::printf("%s\n", labels.size() > 24 ? " ..." : "");
      if (opt.check) {
        // The reference engine must not touch the multi-process store
        // files: it spawns its own in-memory parties whose stream
        // cursors start at 0, while a restored store resumes mid-
        // stream.  Dealing stays bit-identical either way.
        core::EngineConfig check_config = config;
        check_config.triple_store_dir.clear();
        core::TrustDdlEngine engine(spec, check_config);
        const core::InferResult expected = engine.infer(sample, opt.batch);
        const bool match = expected.labels == labels;
        std::printf("check: %s (in-memory engine, same seeds)\n",
                    match ? "MATCH" : "MISMATCH");
        if (!match) {
          exit_code = 2;
        }
      }
    }

    if (training && hosts_model_owner) {
      // Apply the robustly reconstructed weights per epoch and report
      // test accuracy, exactly as TrustDdlEngine::train does.
      std::vector<double> accuracies;
      const auto parameters = model.parameters();
      for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
        bool complete = true;
        for (std::size_t p = 0; p < parameters.size(); ++p) {
          const auto it =
              service->revealed().find(core::reveal_key(epoch, p));
          if (it == service->revealed().end()) {
            complete = false;
            break;
          }
          parameters[p]->value = to_real(it->second, config.frac_bits);
        }
        if (!complete) {
          std::printf("[party %d] epoch %zu: weights not revealed\n",
                      core::kModelOwner, epoch);
          continue;
        }
        accuracies.push_back(
            model.accuracy(split.test.images, split.test.labels));
        std::printf("[party %d] epoch %zu test accuracy: %.4f\n",
                    core::kModelOwner, epoch, accuracies.back());
      }
      if (opt.check) {
        core::EngineConfig check_config = config;
        check_config.triple_store_dir.clear();
        core::TrustDdlEngine engine(spec, check_config);
        const core::TrainResult expected =
            engine.train(split.train, split.test, train_options);
        const bool match = expected.epoch_test_accuracy == accuracies;
        std::printf("check: %s (in-memory engine, same seeds)\n",
                    match ? "MATCH" : "MISMATCH");
        if (!match) {
          exit_code = 2;
        }
      }
    }

    // Let in-flight frames from peers drain before tearing the
    // sockets down (a peer's last stop/ack may still be in transit).
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    for (auto& transport : transports) {
      transport->shutdown();
    }
    return exit_code;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trustddl_party: %s\n", error.what());
    return 1;
  }
}
