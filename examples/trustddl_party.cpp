// trustddl_party: run one (or several) of TrustDDL's five actors as
// an OS process, communicating with its peers over real TCP sockets.
//
// Every process derives the model, the synthetic dataset and the batch
// schedule deterministically from --seed/--data-seed, so a multi-
// process deployment reconstructs exactly the outputs of the
// in-process engine, bit for bit.  The data owner can assert this with
// --check, which re-runs the same workload on the in-memory engine and
// compares results.
//
// Three-process secure inference on localhost:
//
//   ./build/examples/trustddl_party --party-ids 1 &
//   ./build/examples/trustddl_party --party-ids 2 &
//   ./build/examples/trustddl_party --party-ids 0,3,4 --check
//
// Flags:
//   --party-ids LIST     comma-separated actor ids hosted by this
//                        process (0-2 computing parties, 3 data owner,
//                        4 model owner); --party-id is an alias
//   --port-base N        party i listens on 127.0.0.1:(N+i)  [29500]
//   --peers LIST         explicit mesh: id=host:port,... for all 5 ids
//                        (overrides --port-base)
//   --listen HOST        bind host for hosted ids [host from the mesh]
//   --task infer|train|malicious-inference|serve   workload [infer];
//                        malicious-inference runs infer with computing
//                        party 1 mounting consistent-corruption attacks
//                        (Case 3) against every opening; serve runs the
//                        inference serving layer (parties 0-2 + model
//                        owner 4; clients attach via trustddl_client);
//                        train-serve runs the multi-owner robust
//                        training service (parties 0-2 + model owner 4
//                        as sequencer; data owners attach via
//                        trustddl_owner)
//   --clients N          serve: number of client actors [1]; clients
//                        occupy ids 5..5+N-1 and the data owner id 3
//                        is unused
//   --serve-max-batch N  serve: flush a batch at this many rows [8]
//   --serve-window-ms N  serve: max wait before a partial batch is
//                        flushed [20]
//   --serve-queue-cap N  serve: bounded-queue capacity; requests
//                        beyond it are rejected (backpressure) [64]
//   --serve-corrupt-results    serve: hosted computing parties return
//                        corrupted result shares (Byzantine serving-
//                        edge fault injection; clients must out-vote)
//   --owners N           train-serve: data-owner clients [3]; owners
//                        occupy ids 5..5+N-1 (data owner id 3 unused)
//   --aggregation R      train-serve: mean, trimmed-mean or median
//                        [trimmed-mean]
//   --trim N             train-serve: owners trimmed per side [1]
//   --quorum N           train-serve: min ready owners per round;
//                        0 = all owners (deterministic manifests) [0]
//   --rounds-per-epoch N train-serve: SGD rounds per epoch [4]
//   --max-rounds N       train-serve: suspend (checkpoint + exit)
//                        after N rounds; 0 = run to completion [0]
//   --round-window-ms N  train-serve: sequencer wait for more owners
//                        once quorum is met [50]
//   --input-wait-ms N    train-serve: party wait per owner minibatch
//                        before zero-share substitution [2000]
//   --momentum F         train-serve: SGD momentum [0]
//   --checkpoint-dir P   train-serve: TDCK checkpoint directory
//                        (parties + sequencer) for suspend/resume
//   --min-accuracy F     train-serve: exit 3 when the final epoch's
//                        test accuracy is below F
//   --submissions N      train-serve --check: per-owner lifetime
//                        submissions the owners were launched with [4]
//   --owner-batch-rows N train-serve --check: owners' minibatch rows
//                        per submission [8]
//   --metrics-out PATH   write the observability export (JSON, schema
//                        trustddl.metrics.v1: metrics registry,
//                        detection events, traffic matrix, cost) after
//                        the run; enables metrics collection
//   --trace-out PATH     write a protocol-phase trace (JSONL spans)
//   --fleet PATH         serve: read the pod's addresses from a fleet
//                        topology file (trustddl.fleet.v1 JSON; see
//                        src/fleet/topology.hpp and DESIGN.md §13);
//                        requires --pod and implies the pod accepts
//                        routed clients dynamically (clients may come
//                        and go; sends to departed clients are dropped
//                        rather than fatal)
//   --pod NAME           serve: which pod of the --fleet topology this
//                        process belongs to; also labels this pod's
//                        serve.* metrics, /healthz and trace meta
//   --admin-port N       live introspection endpoint on 127.0.0.1:N
//                        (0 picks an ephemeral port, printed at
//                        startup): GET /healthz, /metrics[?format=
//                        prometheus|pair], /events?n=K, /status — see
//                        DESIGN.md §12 and scripts/fleet_status.py
//   --triple-prefetch    offline/online split: prefetch preprocessing
//                        material into shape-keyed triple stores ahead
//                        of the online phase (DESIGN.md §10)
//   --triple-low-water F producer refill trigger as a fraction of each
//                        store's target depth [0.5]
//   --triple-store-dir PATH    persist/restore triple stores under
//                        this directory (per party and per mode;
//                        survives process restarts)
//   --mnist-dir PATH     load the real MNIST idx files from this
//                        directory (train/t10k images + labels);
//                        falls back to the synthetic substitute when
//                        absent or incomplete
//   --model mlp|cnn|tiny-cnn   architecture [mlp]
//   --images N           inference queries / test rows [12]
//   --rows N             training rows [64]
//   --batch N            batch size [4]
//   --epochs N           training epochs [1]
//   --lr F               learning rate [0.3]
//   --mode malicious|hbc security mode [malicious]
//   --batch-openings on|off    deferred-opening scheduler [on]
//   --seed N             model/protocol seed [1]
//   --data-seed N        synthetic-dataset seed [7]
//   --check              verify against an in-memory run (data owner
//                        for infer, model owner for train); exits 2 on
//                        mismatch
//   --connect-timeout-ms N     mesh rendezvous budget [10000]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.hpp"
#include "core/actors.hpp"
#include "core/engine.hpp"
#include "core/metrics_export.hpp"
#include "data/mnist_idx.hpp"
#include "data/synthetic_mnist.hpp"
#include "fleet/topology.hpp"
#include "net/tcp_transport.hpp"
#include "nn/loss.hpp"
#include "obs/admin_server.hpp"
#include "obs/events.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "train/harness.hpp"

using namespace trustddl;

namespace {

struct Options {
  std::vector<int> party_ids;
  std::string listen_host;  // empty: use the host from the mesh entry
  int port_base = 29500;
  std::string peers_text;          // raw --peers value (parsed after
                                   // --task/--clients are known)
  std::vector<std::string> peers;  // [actor id] -> host:port
  std::string task = "infer";
  int clients = 1;
  std::size_t serve_max_batch = 8;
  int serve_window_ms = 20;
  std::size_t serve_queue_cap = 64;
  bool serve_corrupt_results = false;
  int owners = 3;
  std::string aggregation = "trimmed-mean";
  std::size_t trim = 1;
  std::size_t quorum = 0;  // 0: all owners (deterministic manifests)
  std::size_t rounds_per_epoch = 4;
  std::size_t max_rounds = 0;
  int round_window_ms = 50;
  int input_wait_ms = 2000;
  double momentum = 0.0;
  std::string checkpoint_dir;
  double min_accuracy = -1.0;
  std::size_t submissions = 4;
  std::size_t owner_batch_rows = 8;
  std::string model = "mlp";
  std::size_t images = 12;
  std::size_t rows = 64;
  std::size_t batch = 4;
  std::size_t epochs = 1;
  double learning_rate = 0.3;
  std::string mode = "malicious";
  bool batch_openings = true;
  std::uint64_t seed = 1;
  std::uint64_t data_seed = 7;
  bool check = false;
  int connect_timeout_ms = 10000;
  std::string metrics_out;
  std::string trace_out;
  std::string fleet_file;  // --fleet topology path (serve only)
  std::string pod_name;    // --pod: this process's pod in the fleet
  bool fleet = false;      // fleet mode resolved (pod below is valid)
  fleet::PodSpec pod;
  int admin_port = -1;  // -1 = no admin endpoint; 0 = ephemeral
  bool triple_prefetch = false;
  double triple_low_water = 0.5;
  std::string triple_store_dir;
  std::string mnist_dir;
};

[[noreturn]] void usage_error(const std::string& reason) {
  std::fprintf(stderr, "trustddl_party: %s\n(see the header comment of "
               "examples/trustddl_party.cpp for flags)\n",
               reason.c_str());
  std::exit(64);
}

std::vector<int> parse_id_list(const std::string& text) {
  std::vector<int> ids;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (item.empty()) {
      usage_error("empty entry in id list '" + text + "'");
    }
    const int id = std::atoi(item.c_str());
    if (id < 0 || id >= core::kNumActors) {
      usage_error("party id out of range: " + item);
    }
    ids.push_back(id);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return ids;
}

/// "id=host:port,id=host:port,...": fills a vector indexed by actor
/// id.  Which ids must be present depends on the task (serve never
/// uses the data owner, and a party process never dials client slots),
/// so the caller validates completeness.
std::vector<std::string> parse_peer_list(const std::string& text,
                                         int num_actors) {
  std::vector<std::string> addresses(static_cast<std::size_t>(num_actors));
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      usage_error("peer entry '" + item + "' is not id=host:port");
    }
    const int id = std::atoi(item.substr(0, eq).c_str());
    if (id < 0 || id >= num_actors) {
      usage_error("peer id out of range in '" + item + "'");
    }
    addresses[static_cast<std::size_t>(id)] = item.substr(eq + 1);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return addresses;
}

/// The single source of truth for workload names: validation and the
/// usage string both derive from this table, so adding a task cannot
/// leave the error message stale.
constexpr const char* kTaskNames[] = {"infer", "train", "malicious-inference",
                                      "serve", "train-serve"};

bool known_task(const std::string& task) {
  return std::any_of(std::begin(kTaskNames), std::end(kTaskNames),
                     [&](const char* name) { return task == name; });
}

std::string task_usage() {
  std::string text;
  const std::size_t count = std::size(kTaskNames);
  for (std::size_t i = 0; i < count; ++i) {
    if (i > 0) {
      text += i + 1 == count ? " or " : ", ";
    }
    text += kTaskNames[i];
  }
  return text;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  bool clients_given = false;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      usage_error(std::string("missing value for ") + argv[i]);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--party-ids" || arg == "--party-id") {
      opt.party_ids = parse_id_list(value(i));
    } else if (arg == "--port-base") {
      opt.port_base = std::atoi(value(i).c_str());
    } else if (arg == "--peers") {
      opt.peers_text = value(i);
    } else if (arg == "--clients") {
      opt.clients = std::atoi(value(i).c_str());
      clients_given = true;
    } else if (arg == "--serve-max-batch") {
      opt.serve_max_batch =
          static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--serve-window-ms") {
      opt.serve_window_ms = std::atoi(value(i).c_str());
    } else if (arg == "--serve-queue-cap") {
      opt.serve_queue_cap =
          static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--serve-corrupt-results") {
      opt.serve_corrupt_results = true;
    } else if (arg == "--owners") {
      opt.owners = std::atoi(value(i).c_str());
    } else if (arg == "--aggregation") {
      opt.aggregation = value(i);
    } else if (arg == "--trim") {
      opt.trim = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--quorum") {
      opt.quorum = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--rounds-per-epoch") {
      opt.rounds_per_epoch =
          static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--max-rounds") {
      opt.max_rounds = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--round-window-ms") {
      opt.round_window_ms = std::atoi(value(i).c_str());
    } else if (arg == "--input-wait-ms") {
      opt.input_wait_ms = std::atoi(value(i).c_str());
    } else if (arg == "--momentum") {
      opt.momentum = std::atof(value(i).c_str());
    } else if (arg == "--checkpoint-dir") {
      opt.checkpoint_dir = value(i);
    } else if (arg == "--min-accuracy") {
      opt.min_accuracy = std::atof(value(i).c_str());
    } else if (arg == "--submissions") {
      opt.submissions = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--owner-batch-rows") {
      opt.owner_batch_rows =
          static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--listen") {
      opt.listen_host = value(i);
    } else if (arg == "--task") {
      opt.task = value(i);
    } else if (arg == "--model") {
      opt.model = value(i);
    } else if (arg == "--images") {
      opt.images = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--rows") {
      opt.rows = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--batch") {
      opt.batch = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--epochs") {
      opt.epochs = static_cast<std::size_t>(std::atoll(value(i).c_str()));
    } else if (arg == "--lr") {
      opt.learning_rate = std::atof(value(i).c_str());
    } else if (arg == "--mode") {
      opt.mode = value(i);
    } else if (arg == "--batch-openings") {
      opt.batch_openings = value(i) == "on";
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(i).c_str(), nullptr, 10);
    } else if (arg == "--data-seed") {
      opt.data_seed = std::strtoull(value(i).c_str(), nullptr, 10);
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--connect-timeout-ms") {
      opt.connect_timeout_ms = std::atoi(value(i).c_str());
    } else if (arg == "--metrics-out") {
      opt.metrics_out = value(i);
    } else if (arg == "--trace-out") {
      opt.trace_out = value(i);
    } else if (arg == "--fleet") {
      opt.fleet_file = value(i);
    } else if (arg == "--pod") {
      opt.pod_name = value(i);
    } else if (arg == "--admin-port") {
      opt.admin_port = std::atoi(value(i).c_str());
    } else if (arg == "--triple-prefetch") {
      opt.triple_prefetch = true;
    } else if (arg == "--triple-low-water") {
      opt.triple_low_water = std::atof(value(i).c_str());
    } else if (arg == "--triple-store-dir") {
      opt.triple_store_dir = value(i);
    } else if (arg == "--mnist-dir") {
      opt.mnist_dir = value(i);
    } else {
      usage_error("unknown flag " + arg);
    }
  }
  if (opt.party_ids.empty()) {
    usage_error("--party-ids is required");
  }
  if (!known_task(opt.task)) {
    usage_error("--task must be " + task_usage());
  }
  if (opt.task == "malicious-inference" && opt.mode != "malicious") {
    usage_error("--task malicious-inference requires --mode malicious");
  }
  if (opt.mode != "malicious" && opt.mode != "hbc") {
    usage_error("--mode must be malicious or hbc");
  }
  if (opt.images < 1 || opt.rows < 1 || opt.batch < 1 || opt.epochs < 1) {
    usage_error("--images/--rows/--batch/--epochs must be >= 1");
  }
  if (opt.triple_low_water <= 0.0 || opt.triple_low_water > 1.0) {
    usage_error("--triple-low-water must be in (0, 1]");
  }
  const bool serving = opt.task == "serve";
  const bool train_serving = opt.task == "train-serve";
  if (serving) {
    if (opt.clients < 1) {
      usage_error("--clients must be >= 1");
    }
    if (opt.serve_max_batch < 1 || opt.serve_queue_cap < 1 ||
        opt.serve_window_ms < 0) {
      usage_error("--serve-max-batch/--serve-queue-cap must be >= 1 and "
                  "--serve-window-ms >= 0");
    }
  }
  if (train_serving) {
    if (opt.owners < 1) {
      usage_error("--owners must be >= 1");
    }
    if (opt.aggregation != "mean" && opt.aggregation != "trimmed-mean" &&
        opt.aggregation != "median") {
      usage_error("--aggregation must be mean, trimmed-mean or median");
    }
    if (opt.quorum > static_cast<std::size_t>(opt.owners)) {
      usage_error("--quorum must be <= --owners");
    }
    if (opt.rounds_per_epoch < 1 || opt.submissions < 1 ||
        opt.owner_batch_rows < 1) {
      usage_error("--rounds-per-epoch/--submissions/--owner-batch-rows "
                  "must be >= 1");
    }
  }
  if (serving || train_serving) {
    for (const int id : opt.party_ids) {
      if (id == core::kDataOwner) {
        usage_error("--task " + opt.task +
                    " has no data-owner actor (id 3)");
      }
    }
  }
  // Fleet mode: one topology file names every pod's addresses; the
  // pod's client count defaults to the file's `clients` so parties and
  // routed clients cannot disagree on the actor space.
  if (!opt.fleet_file.empty() || !opt.pod_name.empty()) {
    if (!serving) {
      usage_error("--fleet/--pod only apply to --task serve");
    }
    if (opt.fleet_file.empty() || opt.pod_name.empty()) {
      usage_error("--fleet and --pod must be given together");
    }
    try {
      const fleet::FleetTopology topology =
          fleet::load_topology(opt.fleet_file);
      opt.pod = topology.pods[topology.pod_index(opt.pod_name)];
      if (topology.clients > 0 && !clients_given) {
        opt.clients = topology.clients;
      }
    } catch (const Error& error) {
      usage_error(error.what());
    }
    opt.fleet = true;
  }
  // Peers are parsed only once the task is known: serving adds client
  // (or training data owner) actor ids and drops the single data owner
  // from the required set (the extra slots may also stay empty here —
  // a party process accepts those connections, it never dials them).
  const int num_actors =
      core::kNumActors +
      (serving ? opt.clients : train_serving ? opt.owners : 0);
  if (!opt.peers_text.empty()) {
    opt.peers = parse_peer_list(opt.peers_text, num_actors);
    for (int id = 0; id < core::kNumActors; ++id) {
      if ((serving || train_serving) && id == core::kDataOwner) {
        continue;
      }
      if (opt.peers[static_cast<std::size_t>(id)].empty()) {
        usage_error("--peers is missing actor id " + std::to_string(id));
      }
    }
  }
  return opt;
}

const char* role_name(int id) {
  switch (id) {
    case core::kDataOwner:
      return "data-owner";
    case core::kModelOwner:
      return "model-owner";
    default:
      return "computing-party";
  }
}

/// "computing-party-0,model-owner-4" — the /healthz role string for a
/// process hosting several actors.
std::string hosted_roles(const std::vector<int>& party_ids) {
  std::string roles;
  for (const int id : party_ids) {
    if (!roles.empty()) {
      roles += ",";
    }
    roles += std::string(role_name(id)) + "-" + std::to_string(id);
  }
  return roles;
}

/// Starts the live introspection endpoint when --admin-port was given.
/// The /metrics provider renders the same document write_process_export
/// emits at exit, over the live transports and a caller-held detection
/// log vector; `logs_mu` serializes the provider against the actor
/// bodies' end-of-run log assignments.
std::unique_ptr<obs::AdminServer> start_admin(
    const Options& opt,
    const std::vector<std::unique_ptr<net::TcpTransport>>& transports,
    const std::vector<mpc::DetectionLog>& party_logs, std::mutex& logs_mu,
    const Stopwatch& watch, int num_actors, int byzantine_party) {
  if (opt.admin_port < 0) {
    return nullptr;
  }
  obs::AdminOptions admin_options;
  admin_options.port = opt.admin_port;
  auto server = std::make_unique<obs::AdminServer>(admin_options);
  server->set_metrics_provider(
      [&transports, &party_logs, &logs_mu, &watch, num_actors,
       byzantine_party](const obs::MetricsSnapshot& snapshot) {
        const std::lock_guard<std::mutex> lock(logs_mu);
        return core::build_process_export_json(
            snapshot, transports, party_logs, watch.elapsed_seconds(),
            num_actors, byzantine_party);
      });
  server->start();
  obs::HealthState::global().set_identity(hosted_roles(opt.party_ids),
                                          opt.task);
  std::printf("admin endpoint on 127.0.0.1:%d\n", server->port());
  return server;
}

nn::ModelSpec spec_for(const std::string& name) {
  if (name == "mlp") {
    return nn::mnist_mlp_spec();
  }
  if (name == "cnn") {
    return nn::mnist_cnn_spec();
  }
  if (name == "tiny-cnn") {
    return nn::tiny_cnn_spec();
  }
  usage_error("--model must be mlp, cnn or tiny-cnn");
}

// --task serve: host any of parties 0-2 and the model owner.  Clients
// (ids >= serve::kFirstClientId) attach with trustddl_client; the data
// owner (id 3) does not participate.  The mesh is a subset mesh —
// parties and owner interconnect fully and accept client connections,
// but never dial client address slots.
int run_serve(const Options& opt, const core::EngineConfig& config,
              const nn::ModelSpec& spec, nn::Sequential& model,
              std::size_t param_count) {
  const int num_actors = core::kNumActors + opt.clients;

  std::vector<std::string> addresses = opt.peers;
  if (addresses.empty()) {
    for (int id = 0; id < num_actors; ++id) {
      addresses.push_back(opt.fleet
                              ? opt.pod.address_of(id)
                              : "127.0.0.1:" +
                                    std::to_string(opt.port_base + id));
    }
  }

  net::NetworkConfig net_config;
  net_config.num_parties = num_actors;
  net_config.connect.connect_timeout =
      std::chrono::milliseconds(opt.connect_timeout_ms);

  serve::ServeConfig serve_config;
  serve_config.max_batch_rows = opt.serve_max_batch;
  serve_config.batch_window = std::chrono::milliseconds(opt.serve_window_ms);
  serve_config.queue_capacity = opt.serve_queue_cap;

  try {
    std::vector<std::unique_ptr<net::TcpTransport>> transports;
    for (const int id : opt.party_ids) {
      std::string listen = addresses[static_cast<std::size_t>(id)];
      if (!opt.listen_host.empty()) {
        listen = opt.listen_host + ":" +
                 std::to_string(net::parse_address(listen).port);
      }
      std::printf("[party %d] %s listening on %s\n", id, role_name(id),
                  listen.c_str());
      transports.push_back(std::make_unique<net::TcpTransport>(
          static_cast<net::PartyId>(id), listen, net_config));
    }

    // Serving topology: party p links the other parties, the owner and
    // every client; the owner links the parties and every client.
    const auto peers_for = [&](int id) {
      std::vector<net::PartyId> peers;
      for (int p = 0; p < core::kComputingParties; ++p) {
        if (p != id) {
          peers.push_back(static_cast<net::PartyId>(p));
        }
      }
      if (id != core::kModelOwner) {
        peers.push_back(core::kModelOwner);
      }
      // Fleet pods do not rendezvous with clients: routed clients
      // attach (and re-attach after a failover) through the dynamic
      // acceptor below, so the pod comes up without waiting for them.
      if (!opt.fleet) {
        for (int c = 0; c < opt.clients; ++c) {
          peers.push_back(
              static_cast<net::PartyId>(serve::kFirstClientId + c));
        }
      }
      return peers;
    };
    {
      std::vector<std::thread> dialers;
      std::vector<std::exception_ptr> errors(transports.size());
      for (std::size_t i = 0; i < transports.size(); ++i) {
        dialers.emplace_back([&, i] {
          try {
            transports[i]->connect(
                addresses, peers_for(static_cast<int>(transports[i]->self())));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      for (auto& dialer : dialers) {
        dialer.join();
      }
      for (const auto& error : errors) {
        if (error) {
          std::rethrow_exception(error);
        }
      }
    }
    if (opt.fleet) {
      for (auto& transport : transports) {
        transport->accept_dynamic_peers(
            static_cast<net::PartyId>(serve::kFirstClientId));
      }
      std::printf("serve mesh connected (pod %s, %zu local actor%s, "
                  "accepting %d routed client%s)\n",
                  opt.pod.name.c_str(), transports.size(),
                  transports.size() == 1 ? "" : "s", opt.clients,
                  opt.clients == 1 ? "" : "s");
    } else {
      std::printf("serve mesh connected (%zu local actor%s, %d client%s)\n",
                  transports.size(), transports.size() == 1 ? "" : "s",
                  opt.clients, opt.clients == 1 ? "" : "s");
    }

    std::vector<mpc::DetectionLog> party_logs(transports.size());
    std::mutex logs_mu;  // admin /metrics provider vs body assignments
    Stopwatch watch;
    const std::unique_ptr<obs::AdminServer> admin =
        start_admin(opt, transports, party_logs, logs_mu, watch, num_actors,
                    config.byzantine_party);
    std::vector<std::thread> bodies;
    std::vector<std::exception_ptr> errors(transports.size());
    for (std::size_t i = 0; i < transports.size(); ++i) {
      const int id = static_cast<int>(transports[i]->self());
      bodies.emplace_back([&, id, i] {
        try {
          net::Endpoint endpoint =
              transports[i]->endpoint(static_cast<net::PartyId>(id));
          if (id == core::kModelOwner) {
            serve::SchedulerStats stats;
            serve::serve_model_owner_body(spec, config, model, endpoint,
                                          serve_config, opt.clients, &stats);
            std::printf(
                "[party %d] serve done: %llu admitted = %llu completed + "
                "%llu rejected + %llu deadline-missed (%llu batches, "
                "%llu rows)\n",
                id, static_cast<unsigned long long>(stats.admitted),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.deadline_missed),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.batched_rows));
          } else {
            serve::ServerOptions server_options;
            server_options.serve = serve_config;
            server_options.corrupt_results = opt.serve_corrupt_results;
            std::size_t batches = 0;
            mpc::DetectionLog log = serve::serve_computing_party_body(
                spec, config, param_count, id, endpoint, server_options,
                &batches);
            {
              const std::lock_guard<std::mutex> lock(logs_mu);
              party_logs[i] = std::move(log);
            }
            std::printf("[party %d] serve done: %zu batch%s executed\n", id,
                        batches, batches == 1 ? "" : "es");
          }
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (auto& body : bodies) {
      body.join();
    }
    for (std::size_t i = 0; i < transports.size(); ++i) {
      if (errors[i]) {
        std::rethrow_exception(errors[i]);
      }
    }

    core::print_process_traffic(transports);
    core::write_process_export(opt.metrics_out, transports, party_logs,
                               watch.elapsed_seconds(), num_actors,
                               config.byzantine_party);
    if (!opt.trace_out.empty()) {
      obs::Tracer::global().close();
    }
    if (admin) {
      admin->stop();
    }

    // Let in-flight frames from peers drain before tearing the
    // sockets down (a client's last result ack may still be in
    // transit).
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    for (auto& transport : transports) {
      transport->shutdown();
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trustddl_party: %s\n", error.what());
    return 1;
  }
}

train::TrainConfig train_config_from(const Options& opt) {
  train::TrainConfig tc;
  tc.rule = opt.aggregation == "mean"     ? mpc::AggregationRule::kMean
            : opt.aggregation == "median" ? mpc::AggregationRule::kMedian
                                          : mpc::AggregationRule::kTrimmedMean;
  tc.trim = opt.trim;
  tc.quorum =
      opt.quorum == 0 ? static_cast<std::size_t>(opt.owners) : opt.quorum;
  tc.round_window = std::chrono::milliseconds(opt.round_window_ms);
  tc.input_wait = std::chrono::milliseconds(opt.input_wait_ms);
  tc.rounds_per_epoch = opt.rounds_per_epoch;
  tc.epochs = opt.epochs;
  tc.max_rounds = opt.max_rounds;
  tc.learning_rate = opt.learning_rate;
  tc.momentum = opt.momentum;
  tc.checkpoint_dir = opt.checkpoint_dir;
  return tc;
}

// --task train-serve: host any of parties 0-2 and the model owner
// (who doubles as the round sequencer).  Data owners (ids >=
// train::kFirstOwnerId) attach with trustddl_owner; the single-owner
// actor id 3 is unused.  Same subset mesh as serving: parties and the
// model owner interconnect fully and accept owner connections, but
// never dial owner address slots.
int run_train_serve(const Options& opt, const core::EngineConfig& config,
                    const nn::ModelSpec& spec, nn::Sequential& model,
                    std::size_t param_count) {
  const int num_actors = core::kNumActors + opt.owners;

  std::vector<std::string> addresses = opt.peers;
  if (addresses.empty()) {
    for (int id = 0; id < num_actors; ++id) {
      addresses.push_back("127.0.0.1:" + std::to_string(opt.port_base + id));
    }
  }

  net::NetworkConfig net_config;
  net_config.num_parties = num_actors;
  net_config.connect.connect_timeout =
      std::chrono::milliseconds(opt.connect_timeout_ms);

  const train::TrainConfig train_config = train_config_from(opt);

  // Only the test split is evaluated here (per-epoch accuracy at the
  // model owner); the training shards live with the owners.  The full
  // split is still derived with the owners' seeds so --check can
  // replay their exact data in memory.
  data::SyntheticMnistConfig data_config;
  data_config.train_count = opt.rows;
  data_config.test_count = opt.images;
  data_config.seed = opt.data_seed;
  const nn::InputGeometry geometry = nn::input_geometry(spec);
  data_config.height = geometry.height;
  data_config.width = geometry.width;
  data_config.classes = spec.classes;
  const auto split = data::load_mnist_or_synthetic(opt.mnist_dir, data_config);

  try {
    std::vector<std::unique_ptr<net::TcpTransport>> transports;
    for (const int id : opt.party_ids) {
      std::string listen = addresses[static_cast<std::size_t>(id)];
      if (!opt.listen_host.empty()) {
        listen = opt.listen_host + ":" +
                 std::to_string(net::parse_address(listen).port);
      }
      std::printf("[party %d] %s listening on %s\n", id, role_name(id),
                  listen.c_str());
      transports.push_back(std::make_unique<net::TcpTransport>(
          static_cast<net::PartyId>(id), listen, net_config));
    }

    const auto peers_for = [&](int id) {
      std::vector<net::PartyId> peers;
      for (int p = 0; p < core::kComputingParties; ++p) {
        if (p != id) {
          peers.push_back(static_cast<net::PartyId>(p));
        }
      }
      if (id != core::kModelOwner) {
        peers.push_back(core::kModelOwner);
      }
      for (int k = 0; k < opt.owners; ++k) {
        peers.push_back(static_cast<net::PartyId>(train::kFirstOwnerId + k));
      }
      return peers;
    };
    {
      std::vector<std::thread> dialers;
      std::vector<std::exception_ptr> errors(transports.size());
      for (std::size_t i = 0; i < transports.size(); ++i) {
        dialers.emplace_back([&, i] {
          try {
            transports[i]->connect(
                addresses, peers_for(static_cast<int>(transports[i]->self())));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      for (auto& dialer : dialers) {
        dialer.join();
      }
      for (const auto& error : errors) {
        if (error) {
          std::rethrow_exception(error);
        }
      }
    }
    std::printf("train mesh connected (%zu local actor%s, %d owner%s)\n",
                transports.size(), transports.size() == 1 ? "" : "s",
                opt.owners, opt.owners == 1 ? "" : "s");

    std::vector<mpc::DetectionLog> party_logs(transports.size());
    std::mutex logs_mu;  // admin /metrics provider vs body assignments
    train::SequencerStats stats;
    std::map<std::string, RingTensor> revealed;
    Stopwatch watch;
    const std::unique_ptr<obs::AdminServer> admin =
        start_admin(opt, transports, party_logs, logs_mu, watch, num_actors,
                    config.byzantine_party);
    std::vector<std::thread> bodies;
    std::vector<std::exception_ptr> errors(transports.size());
    for (std::size_t i = 0; i < transports.size(); ++i) {
      const int id = static_cast<int>(transports[i]->self());
      bodies.emplace_back([&, id, i] {
        try {
          net::Endpoint endpoint =
              transports[i]->endpoint(static_cast<net::PartyId>(id));
          if (id == core::kModelOwner) {
            train::train_service_owner_body(config, model, endpoint,
                                            train_config, opt.owners, &stats,
                                            &revealed);
            std::printf(
                "[party %d] train done: %llu rounds, %llu admitted = "
                "%llu consumed + %llu discarded, %llu dropped owner "
                "slots%s\n",
                id, static_cast<unsigned long long>(stats.rounds),
                static_cast<unsigned long long>(stats.admitted),
                static_cast<unsigned long long>(stats.consumed),
                static_cast<unsigned long long>(stats.discarded),
                static_cast<unsigned long long>(stats.dropped_owner_slots),
                stats.suspended ? " (suspended)" : "");
          } else {
            bool clean = true;
            std::uint64_t rounds = 0;
            mpc::DetectionLog log = train::train_service_party_body(
                spec, config, param_count, id, endpoint, train_config, &clean,
                &rounds);
            {
              const std::lock_guard<std::mutex> lock(logs_mu);
              party_logs[i] = std::move(log);
            }
            std::printf("[party %d] train done: %llu round%s executed%s\n",
                        id, static_cast<unsigned long long>(rounds),
                        rounds == 1 ? "" : "s",
                        clean ? "" : " (suspended)");
          }
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (auto& body : bodies) {
      body.join();
    }
    for (std::size_t i = 0; i < transports.size(); ++i) {
      if (errors[i]) {
        std::rethrow_exception(errors[i]);
      }
    }

    core::print_process_traffic(transports);
    core::write_process_export(opt.metrics_out, transports, party_logs,
                               watch.elapsed_seconds(), num_actors,
                               config.byzantine_party);
    if (!opt.trace_out.empty()) {
      obs::Tracer::global().close();
    }
    if (admin) {
      admin->stop();
    }

    int exit_code = 0;
    const bool hosts_model_owner =
        std::count(opt.party_ids.begin(), opt.party_ids.end(),
                   static_cast<int>(core::kModelOwner)) > 0;
    if (hosts_model_owner) {
      std::vector<double> accuracies;
      for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
        if (!train::apply_revealed_weights(revealed, epoch, param_count,
                                           config.frac_bits, model)) {
          std::printf("[party %d] epoch %zu: weights not revealed\n",
                      core::kModelOwner, epoch);
          continue;
        }
        accuracies.push_back(
            model.accuracy(split.test.images, split.test.labels));
        std::printf("[party %d] epoch %zu test accuracy: %.4f\n",
                    core::kModelOwner, epoch, accuracies.back());
      }
      if (!stats.suspended && opt.min_accuracy >= 0.0) {
        const bool pass =
            !accuracies.empty() && accuracies.back() >= opt.min_accuracy;
        std::printf("min-accuracy check: %s (%.4f vs %.4f)\n",
                    pass ? "PASS" : "FAIL",
                    accuracies.empty() ? 0.0 : accuracies.back(),
                    opt.min_accuracy);
        if (!pass) {
          exit_code = 3;
        }
      }
      if (!stats.suspended && opt.check) {
        // Reference: the in-memory harness over the same seeds and
        // honest owners.  The revealed epoch weights must match BIT
        // FOR BIT — the TCP deployment runs the same SPMD bodies.
        train::TrainSessionConfig session;
        session.spec = spec;
        session.engine = config;
        session.engine.triple_store_dir.clear();
        session.engine.metrics_out.clear();
        session.train = train_config;
        session.train.checkpoint_dir.clear();
        session.train.max_rounds = 0;
        session.num_owners = opt.owners;
        session.submissions_per_owner = opt.submissions;
        session.owner_batch_rows = opt.owner_batch_rows;
        session.dataset = split.train;
        const train::TrainSessionResult expected =
            train::run_training_session(session);
        const bool match = expected.revealed == revealed;
        std::printf("train check: %s (in-memory harness, same seeds)\n",
                    match ? "MATCH" : "MISMATCH");
        if (!match) {
          exit_code = 2;
        }
      }
    }

    // Let in-flight frames from peers drain before tearing the
    // sockets down (an owner's last stop notice may still be in
    // transit).
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    for (auto& transport : transports) {
      transport->shutdown();
    }
    return exit_code;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trustddl_party: %s\n", error.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  // --- Deterministic shared state: every process derives the same
  // configuration, model and batch schedule from the flags alone.
  core::EngineConfig config;
  config.mode = opt.mode == "hbc" ? mpc::SecurityMode::kHonestButCurious
                                  : mpc::SecurityMode::kMalicious;
  config.batch_openings = opt.batch_openings;
  config.seed = opt.seed;
  config.triple_prefetch = opt.triple_prefetch;
  config.triple_low_water = opt.triple_low_water;
  config.triple_store_dir = opt.triple_store_dir;
  // Processes start at different times; give the model owner's
  // collective ops more slack than the in-process default.
  config.collect_timeout = std::chrono::milliseconds(2000);

  const bool malicious_task = opt.task == "malicious-inference";
  if (malicious_task) {
    // Computing party 1 mounts consistent-corruption (Case 3) attacks:
    // commitment-consistent but corrupted shares, caught by share-copy
    // authentication at each honest observer (one attributable
    // share_auth_failure per attacked opening).  Masked-open rescaling
    // is mandatory under an active adversary — share-local truncation
    // would let the honest parties' states drift apart (DESIGN.md §4).
    config.byzantine_party = 1;
    config.byzantine.behavior =
        mpc::ByzantineConfig::Behavior::kConsistentCorruption;
    config.trunc_mode = mpc::TruncationMode::kMaskedOpen;
  }
  if (opt.task == "train-serve") {
    // The aggregation rescale and checkpoint/resume both need value-
    // exact truncation: under masked-open every opened value is a pure
    // function of the inputs and the dealt material, so a resumed
    // session replays bit-identically (DESIGN.md §11).
    config.trunc_mode = mpc::TruncationMode::kMaskedOpen;
  }

  // Pod identity must be set before the tracer opens (the trace meta
  // record carries it) and before the admin server answers /healthz:
  // it is what lets fleet-wide roll-ups attribute every sample,
  // span and health probe to its serving pod.
  if (opt.fleet) {
    obs::HealthState::global().set_pod(opt.pod.name);
  }
  // Telemetry: arm the sinks before any actor runs so every span,
  // counter and detection event of this process's actors is captured.
  if (!opt.metrics_out.empty()) {
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::global().reset();
  }
  if (!opt.trace_out.empty()) {
    obs::Tracer::global().open(opt.trace_out);
  }
  if (!opt.metrics_out.empty() || !opt.trace_out.empty()) {
    obs::EventLog::global().clear();
  }

  const nn::ModelSpec spec = spec_for(opt.model);
  Rng model_rng(config.seed);
  nn::Sequential model = nn::build_model(spec, model_rng);
  const std::size_t param_count = model.parameters().size();

  if (opt.task == "serve") {
    // The serving workload has no dataset or jobs of its own — clients
    // bring the inputs.  It gets its own driver with the larger actor
    // space and subset-mesh rendezvous.
    return run_serve(opt, config, spec, model, param_count);
  }
  if (opt.task == "train-serve") {
    return run_train_serve(opt, config, spec, model, param_count);
  }

  data::SyntheticMnistConfig data_config;
  data_config.train_count = opt.rows;
  data_config.test_count = opt.images;
  data_config.seed = opt.data_seed;
  // Synthetic-data geometry follows the model (--model tiny-cnn means
  // 12x12 4-class images); real MNIST idx files are 28x28/10 and only
  // fit the mlp/cnn specs.
  const nn::InputGeometry geometry = nn::input_geometry(spec);
  data_config.height = geometry.height;
  data_config.width = geometry.width;
  data_config.classes = spec.classes;
  const auto split =
      data::load_mnist_or_synthetic(opt.mnist_dir, data_config);
  if (!opt.mnist_dir.empty() && !data::mnist_files_present(opt.mnist_dir)) {
    std::fprintf(stderr,
                 "trustddl_party: %s is missing MNIST idx files; using the "
                 "synthetic substitute\n",
                 opt.mnist_dir.c_str());
  }
  const data::Dataset sample =
      data::slice(split.test, 0, std::min(opt.images, split.test.size()));

  core::TrainOptions train_options;
  train_options.epochs = opt.epochs;
  train_options.batch_size = opt.batch;
  train_options.learning_rate = opt.learning_rate;

  const bool training = opt.task == "train";
  std::unique_ptr<core::InferJob> infer_job;
  std::unique_ptr<core::TrainJob> train_job;
  if (training) {
    train_job = std::make_unique<core::TrainJob>(core::make_train_job(
        spec, config, train_options, split.train, param_count));
  } else {
    infer_job = std::make_unique<core::InferJob>(
        core::make_infer_job(spec, config, param_count, sample, opt.batch));
  }

  // --- Mesh addresses: explicit --peers, or 127.0.0.1:(base+id).
  std::vector<std::string> addresses = opt.peers;
  if (addresses.empty()) {
    for (int id = 0; id < core::kNumActors; ++id) {
      addresses.push_back("127.0.0.1:" +
                          std::to_string(opt.port_base + id));
    }
  }

  net::NetworkConfig net_config;
  net_config.num_parties = core::kNumActors;
  net_config.connect.connect_timeout =
      std::chrono::milliseconds(opt.connect_timeout_ms);

  try {
    // Bind every hosted id before dialing anyone, then rendezvous
    // concurrently: each connect() blocks until that id's mesh is up.
    std::vector<std::unique_ptr<net::TcpTransport>> transports;
    for (const int id : opt.party_ids) {
      std::string listen = addresses[static_cast<std::size_t>(id)];
      if (!opt.listen_host.empty()) {
        listen = opt.listen_host + ":" +
                 std::to_string(net::parse_address(listen).port);
      }
      std::printf("[party %d] %s listening on %s\n", id, role_name(id),
                  listen.c_str());
      transports.push_back(std::make_unique<net::TcpTransport>(
          static_cast<net::PartyId>(id), listen, net_config));
    }
    {
      std::vector<std::thread> dialers;
      std::vector<std::exception_ptr> errors(transports.size());
      for (std::size_t i = 0; i < transports.size(); ++i) {
        dialers.emplace_back([&, i] {
          try {
            transports[i]->connect(addresses);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      for (auto& dialer : dialers) {
        dialer.join();
      }
      for (const auto& error : errors) {
        if (error) {
          std::rethrow_exception(error);
        }
      }
    }
    std::printf("mesh connected (%zu local actor%s)\n", transports.size(),
                transports.size() == 1 ? "" : "s");

    // --- Run the hosted actor bodies, one thread per id.
    std::unique_ptr<core::ModelOwnerService> service;
    for (const auto& transport : transports) {
      if (transport->self() == core::kModelOwner) {
        service = std::make_unique<core::ModelOwnerService>(
            transport->endpoint(core::kModelOwner),
            core::make_owner_service_config(config, training));
      }
    }

    // Protocol-level adversary for the hosted Byzantine party (if
    // any); make_party_context attaches it only at that party.
    std::unique_ptr<mpc::StandardAdversary> adversary;
    if (config.byzantine_party >= 0) {
      adversary = std::make_unique<mpc::StandardAdversary>(config.byzantine);
    }

    std::vector<mpc::DetectionLog> party_logs(transports.size());
    std::mutex logs_mu;  // admin /metrics provider vs body assignments
    Stopwatch watch;
    const std::unique_ptr<obs::AdminServer> admin =
        start_admin(opt, transports, party_logs, logs_mu, watch,
                    core::kNumActors, config.byzantine_party);

    std::vector<std::size_t> labels;
    std::vector<std::thread> bodies;
    std::vector<std::exception_ptr> errors(transports.size());
    for (std::size_t i = 0; i < transports.size(); ++i) {
      const int id = static_cast<int>(transports[i]->self());
      bodies.emplace_back([&, id, i] {
        try {
          net::Endpoint endpoint =
              transports[i]->endpoint(static_cast<net::PartyId>(id));
          if (id == core::kModelOwner) {
            if (training) {
              core::train_model_owner_body(*train_job, endpoint, model,
                                           *service);
            } else {
              core::infer_model_owner_body(*infer_job, endpoint, model,
                                           *service);
            }
          } else if (id == core::kDataOwner) {
            if (training) {
              core::train_data_owner_body(*train_job, endpoint);
            } else {
              labels = core::infer_data_owner_body(*infer_job, endpoint);
            }
          } else {
            const mpc::DetectionLog log =
                training ? core::train_computing_party_body(
                               *train_job, id, endpoint, adversary.get())
                         : core::infer_computing_party_body(
                               *infer_job, id, endpoint, adversary.get());
            std::printf("[party %d] done: %llu opening rounds, %zu "
                        "anomalies detected\n",
                        id, static_cast<unsigned long long>(log.opens),
                        log.events.size());
            {
              const std::lock_guard<std::mutex> lock(logs_mu);
              party_logs[i] = log;
            }
          }
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (auto& body : bodies) {
      body.join();
    }
    for (std::size_t i = 0; i < transports.size(); ++i) {
      if (errors[i]) {
        std::rethrow_exception(errors[i]);
      }
    }

    core::print_process_traffic(transports);
    core::write_process_export(opt.metrics_out, transports, party_logs,
                               watch.elapsed_seconds(), core::kNumActors,
                               config.byzantine_party);
    if (!opt.trace_out.empty()) {
      obs::Tracer::global().close();
    }
    if (admin) {
      admin->stop();
    }

    int exit_code = 0;
    const bool hosts_data_owner =
        std::count(opt.party_ids.begin(), opt.party_ids.end(),
                   static_cast<int>(core::kDataOwner)) > 0;
    const bool hosts_model_owner =
        std::count(opt.party_ids.begin(), opt.party_ids.end(),
                   static_cast<int>(core::kModelOwner)) > 0;

    if (!training && hosts_data_owner) {
      std::printf("[party %d] predicted labels:", core::kDataOwner);
      for (std::size_t i = 0; i < labels.size() && i < 24; ++i) {
        std::printf(" %zu", labels[i]);
      }
      std::printf("%s\n", labels.size() > 24 ? " ..." : "");
      if (opt.check) {
        // The reference engine must not touch the multi-process store
        // files: it spawns its own in-memory parties whose stream
        // cursors start at 0, while a restored store resumes mid-
        // stream.  Dealing stays bit-identical either way.
        core::EngineConfig check_config = config;
        check_config.triple_store_dir.clear();
        core::TrustDdlEngine engine(spec, check_config);
        const core::InferResult expected = engine.infer(sample, opt.batch);
        const bool match = expected.labels == labels;
        std::printf("check: %s (in-memory engine, same seeds)\n",
                    match ? "MATCH" : "MISMATCH");
        if (!match) {
          exit_code = 2;
        }
      }
    }

    if (training && hosts_model_owner) {
      // Apply the robustly reconstructed weights per epoch and report
      // test accuracy, exactly as TrustDdlEngine::train does.
      std::vector<double> accuracies;
      const auto parameters = model.parameters();
      for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
        bool complete = true;
        for (std::size_t p = 0; p < parameters.size(); ++p) {
          const auto it =
              service->revealed().find(core::reveal_key(epoch, p));
          if (it == service->revealed().end()) {
            complete = false;
            break;
          }
          parameters[p]->value = to_real(it->second, config.frac_bits);
        }
        if (!complete) {
          std::printf("[party %d] epoch %zu: weights not revealed\n",
                      core::kModelOwner, epoch);
          continue;
        }
        accuracies.push_back(
            model.accuracy(split.test.images, split.test.labels));
        std::printf("[party %d] epoch %zu test accuracy: %.4f\n",
                    core::kModelOwner, epoch, accuracies.back());
      }
      if (opt.check) {
        core::EngineConfig check_config = config;
        check_config.triple_store_dir.clear();
        core::TrustDdlEngine engine(spec, check_config);
        const core::TrainResult expected =
            engine.train(split.train, split.test, train_options);
        const bool match = expected.epoch_test_accuracy == accuracies;
        std::printf("check: %s (in-memory engine, same seeds)\n",
                    match ? "MATCH" : "MISMATCH");
        if (!match) {
          exit_code = 2;
        }
      }
    }

    // Let in-flight frames from peers drain before tearing the
    // sockets down (a peer's last stop/ack may still be in transit).
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    for (auto& transport : transports) {
      transport->shutdown();
    }
    return exit_code;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trustddl_party: %s\n", error.what());
    return 1;
  }
}
