// End-to-end secure model training (paper §III):
//
// The data owner shares its labelled images into the proxy layer; the
// model owner shares the initial weights and deals preprocessing
// material; the three computing parties run SGD entirely on secret
// shares (SecMatMul-BT for the linear algebra, SecComp-BT for ReLU,
// Softmax outsourced to the model owner).  After every epoch the model
// owner robustly reconstructs the weights and evaluates test accuracy
// — the TrustDDL curve of Fig. 2.
//
// Build & run:  ./build/examples/secure_training
#include <cstdio>

#include "core/engine.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/loss.hpp"

using namespace trustddl;

int main() {
  std::printf("=== TrustDDL secure training ===\n\n");

  data::SyntheticMnistConfig data_config;
  data_config.train_count = 400;
  data_config.test_count = 120;
  data_config.seed = 31;
  const auto split = data::generate_synthetic_mnist(data_config);

  core::EngineConfig config;
  config.mode = mpc::SecurityMode::kMalicious;
  config.seed = 3;
  core::TrustDdlEngine engine(nn::mnist_mlp_spec(), config);

  const double initial_accuracy = engine.reference_model().accuracy(
      split.test.images, split.test.labels);
  std::printf("network: 784-64-10 MLP, %zu training images, batch 16, "
              "3 epochs, malicious-model protocols\n",
              split.train.size());
  std::printf("initial (random weights) test accuracy: %.1f%%\n\n",
              100 * initial_accuracy);

  core::TrainOptions options;
  options.epochs = 3;
  options.batch_size = 16;
  options.learning_rate = 0.3;
  options.evaluate_each_epoch = true;

  const core::TrainResult result =
      engine.train(split.train, split.test, options);

  std::printf("%-8s %s\n", "epoch", "test accuracy (weights reconstructed "
                                    "at the model owner)");
  for (std::size_t epoch = 0; epoch < result.epoch_test_accuracy.size();
       ++epoch) {
    std::printf("%-8zu %.1f%%\n", epoch + 1,
                100 * result.epoch_test_accuracy[epoch]);
  }

  std::printf("\ncost: %.1f s wall, %.1f MB total communication "
              "(%.1f MB among the proxy parties, %.1f MB with the owners), "
              "%llu messages\n",
              result.cost.wall_seconds, result.cost.total_megabytes(),
              static_cast<double>(result.cost.proxy_bytes) / (1 << 20),
              static_cast<double>(result.cost.owner_bytes) / (1 << 20),
              static_cast<unsigned long long>(result.cost.total_messages));
  std::printf("no party ever saw the training data, the labels, or the "
              "model weights in the clear.\n");
  return 0;
}
