// Quickstart: the TrustDDL building blocks in ~80 lines.
//
//  1. Split two secret matrices into replicated shares (Fig. 1 layout).
//  2. Run SecMul-BT across three computing parties (threads) to obtain
//     shares of the product — with the commitment phase and redundant
//     reconstruction of paper Algorithm 4.
//  3. Open the result and verify it matches the plaintext product.
//  4. Re-run with one party acting Byzantine and watch the honest
//     parties detect it and still produce the correct product.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "mpc/adversary.hpp"
#include "mpc/beaver.hpp"
#include "mpc/open.hpp"
#include "mpc/protocols_bt.hpp"
#include "net/runtime.hpp"
#include "numeric/fixed_point.hpp"

using namespace trustddl;

namespace {

constexpr int kF = fx::kDefaultFracBits;

void run_once(bool with_byzantine) {
  Rng rng(42);

  // The data owner's secrets.
  const RealTensor x(Shape{2, 2}, {1.5, -2.0, 0.25, 3.0});
  const RealTensor y(Shape{2, 2}, {4.0, 0.5, -1.0, 2.0});

  // Fixed-point encode and split into the three replicated share sets.
  const auto x_views = mpc::share_secret(to_ring(x, kF), rng);
  const auto y_views = mpc::share_secret(to_ring(y, kF), rng);

  // The model owner deals one Beaver triple for the multiplication.
  auto dealer = std::make_shared<mpc::SharedDealer>(7, kF);

  // One optional Byzantine party that corrupts its shares while still
  // honoring the commitment phase (Case 3 of the security proof).
  mpc::ByzantineConfig byz_config;
  byz_config.behavior = mpc::ByzantineConfig::Behavior::kConsistentCorruption;
  mpc::StandardAdversary adversary(byz_config);

  net::Network network(net::NetworkConfig{.num_parties = 3});
  std::array<mpc::PartyContext, 3> contexts;
  for (int party = 0; party < 3; ++party) {
    auto& ctx = contexts[static_cast<std::size_t>(party)];
    ctx.endpoint = network.endpoint(party);
    ctx.party = party;
  }
  if (with_byzantine) {
    contexts[1].adversary = &adversary;
  }

  std::array<RealTensor, 3> results;
  net::run_parties(3, [&](net::PartyId party) {
    auto& ctx = contexts[static_cast<std::size_t>(party)];
    mpc::LocalTripleSource triples(dealer, party);

    // z = x (.) y on shares: Beaver masking + commitment + redundant
    // reconstruction, then a fixed-point rescale.
    mpc::PartyShare z = mpc::sec_mul_bt(
        ctx, x_views[static_cast<std::size_t>(party)],
        y_views[static_cast<std::size_t>(party)],
        triples.mul_triple(Shape{2, 2}));
    z = mpc::truncate_product_local(z, kF);

    // Robustly open the product (normally only an owner would).
    results[static_cast<std::size_t>(party)] =
        to_real(mpc::open_value(ctx, z), kF);
  });

  std::printf("%s:\n", with_byzantine
                           ? "With Byzantine party 1 corrupting its shares"
                           : "All parties honest");
  std::printf("  plaintext x*y = [%.3f %.3f; %.3f %.3f]\n", 1.5 * 4.0,
              -2.0 * 0.5, 0.25 * -1.0, 3.0 * 2.0);
  for (int party = 0; party < 3; ++party) {
    const auto& r = results[static_cast<std::size_t>(party)];
    std::printf("  party %d opened  [%.3f %.3f; %.3f %.3f]   "
                "(detections: %zu)\n",
                party, r[0], r[1], r[2], r[3],
                contexts[static_cast<std::size_t>(party)]
                    .detections.events.size());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== TrustDDL quickstart: one Byzantine-tolerant secure "
              "multiplication ===\n\n");
  run_once(/*with_byzantine=*/false);
  run_once(/*with_byzantine=*/true);
  std::printf("Honest parties always open the correct product — guaranteed "
              "output delivery.\n");
  return 0;
}
