# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sha256[1]_include.cmake")
include("/root/repo/build/tests/test_bytes[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_fixed_point[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_conv[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_sharing[1]_include.cmake")
include("/root/repo/build/tests/test_open[1]_include.cmake")
include("/root/repo/build/tests/test_protocols_bt[1]_include.cmake")
include("/root/repo/build/tests/test_protocols_hbc[1]_include.cmake")
include("/root/repo/build/tests/test_layers[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_secure_model[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_robust_reconstruct[1]_include.cmake")
include("/root/repo/build/tests/test_share_serde[1]_include.cmake")
include("/root/repo/build/tests/test_owner_service[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_properties[1]_include.cmake")
include("/root/repo/build/tests/test_dealer[1]_include.cmake")
