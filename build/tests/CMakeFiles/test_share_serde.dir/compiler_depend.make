# Empty compiler generated dependencies file for test_share_serde.
# This may be replaced when dependencies are built.
