file(REMOVE_RECURSE
  "CMakeFiles/test_share_serde.dir/test_share_serde.cpp.o"
  "CMakeFiles/test_share_serde.dir/test_share_serde.cpp.o.d"
  "test_share_serde"
  "test_share_serde.pdb"
  "test_share_serde[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_share_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
