
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bytes.cpp" "tests/CMakeFiles/test_bytes.dir/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/test_bytes.dir/test_bytes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trustddl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/trustddl_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trustddl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/trustddl_mpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
