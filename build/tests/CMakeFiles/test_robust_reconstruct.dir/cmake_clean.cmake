file(REMOVE_RECURSE
  "CMakeFiles/test_robust_reconstruct.dir/test_robust_reconstruct.cpp.o"
  "CMakeFiles/test_robust_reconstruct.dir/test_robust_reconstruct.cpp.o.d"
  "test_robust_reconstruct"
  "test_robust_reconstruct.pdb"
  "test_robust_reconstruct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_robust_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
