# Empty dependencies file for test_robust_reconstruct.
# This may be replaced when dependencies are built.
