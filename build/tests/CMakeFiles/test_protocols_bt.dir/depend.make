# Empty dependencies file for test_protocols_bt.
# This may be replaced when dependencies are built.
