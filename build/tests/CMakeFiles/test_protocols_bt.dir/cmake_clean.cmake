file(REMOVE_RECURSE
  "CMakeFiles/test_protocols_bt.dir/test_protocols_bt.cpp.o"
  "CMakeFiles/test_protocols_bt.dir/test_protocols_bt.cpp.o.d"
  "test_protocols_bt"
  "test_protocols_bt.pdb"
  "test_protocols_bt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocols_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
