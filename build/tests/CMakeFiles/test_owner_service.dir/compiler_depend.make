# Empty compiler generated dependencies file for test_owner_service.
# This may be replaced when dependencies are built.
