file(REMOVE_RECURSE
  "CMakeFiles/test_owner_service.dir/test_owner_service.cpp.o"
  "CMakeFiles/test_owner_service.dir/test_owner_service.cpp.o.d"
  "test_owner_service"
  "test_owner_service.pdb"
  "test_owner_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_owner_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
