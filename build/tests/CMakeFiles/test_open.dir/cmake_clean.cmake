file(REMOVE_RECURSE
  "CMakeFiles/test_open.dir/test_open.cpp.o"
  "CMakeFiles/test_open.dir/test_open.cpp.o.d"
  "test_open"
  "test_open.pdb"
  "test_open[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_open.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
