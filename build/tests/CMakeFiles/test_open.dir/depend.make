# Empty dependencies file for test_open.
# This may be replaced when dependencies are built.
