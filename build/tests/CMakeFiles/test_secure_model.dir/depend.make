# Empty dependencies file for test_secure_model.
# This may be replaced when dependencies are built.
