file(REMOVE_RECURSE
  "CMakeFiles/test_secure_model.dir/test_secure_model.cpp.o"
  "CMakeFiles/test_secure_model.dir/test_secure_model.cpp.o.d"
  "test_secure_model"
  "test_secure_model.pdb"
  "test_secure_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_secure_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
