# Empty compiler generated dependencies file for test_dealer.
# This may be replaced when dependencies are built.
