file(REMOVE_RECURSE
  "CMakeFiles/test_dealer.dir/test_dealer.cpp.o"
  "CMakeFiles/test_dealer.dir/test_dealer.cpp.o.d"
  "test_dealer"
  "test_dealer.pdb"
  "test_dealer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dealer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
