# Empty dependencies file for test_protocols_hbc.
# This may be replaced when dependencies are built.
