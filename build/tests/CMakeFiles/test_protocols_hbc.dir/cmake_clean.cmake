file(REMOVE_RECURSE
  "CMakeFiles/test_protocols_hbc.dir/test_protocols_hbc.cpp.o"
  "CMakeFiles/test_protocols_hbc.dir/test_protocols_hbc.cpp.o.d"
  "test_protocols_hbc"
  "test_protocols_hbc.pdb"
  "test_protocols_hbc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocols_hbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
