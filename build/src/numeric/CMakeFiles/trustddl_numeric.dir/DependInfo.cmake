
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/conv.cpp" "src/numeric/CMakeFiles/trustddl_numeric.dir/conv.cpp.o" "gcc" "src/numeric/CMakeFiles/trustddl_numeric.dir/conv.cpp.o.d"
  "/root/repo/src/numeric/fixed_point.cpp" "src/numeric/CMakeFiles/trustddl_numeric.dir/fixed_point.cpp.o" "gcc" "src/numeric/CMakeFiles/trustddl_numeric.dir/fixed_point.cpp.o.d"
  "/root/repo/src/numeric/serde.cpp" "src/numeric/CMakeFiles/trustddl_numeric.dir/serde.cpp.o" "gcc" "src/numeric/CMakeFiles/trustddl_numeric.dir/serde.cpp.o.d"
  "/root/repo/src/numeric/tensor.cpp" "src/numeric/CMakeFiles/trustddl_numeric.dir/tensor.cpp.o" "gcc" "src/numeric/CMakeFiles/trustddl_numeric.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trustddl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
