# Empty compiler generated dependencies file for trustddl_numeric.
# This may be replaced when dependencies are built.
