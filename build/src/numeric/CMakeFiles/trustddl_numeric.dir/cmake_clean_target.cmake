file(REMOVE_RECURSE
  "libtrustddl_numeric.a"
)
