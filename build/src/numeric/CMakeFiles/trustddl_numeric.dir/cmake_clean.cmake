file(REMOVE_RECURSE
  "CMakeFiles/trustddl_numeric.dir/conv.cpp.o"
  "CMakeFiles/trustddl_numeric.dir/conv.cpp.o.d"
  "CMakeFiles/trustddl_numeric.dir/fixed_point.cpp.o"
  "CMakeFiles/trustddl_numeric.dir/fixed_point.cpp.o.d"
  "CMakeFiles/trustddl_numeric.dir/serde.cpp.o"
  "CMakeFiles/trustddl_numeric.dir/serde.cpp.o.d"
  "CMakeFiles/trustddl_numeric.dir/tensor.cpp.o"
  "CMakeFiles/trustddl_numeric.dir/tensor.cpp.o.d"
  "libtrustddl_numeric.a"
  "libtrustddl_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustddl_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
