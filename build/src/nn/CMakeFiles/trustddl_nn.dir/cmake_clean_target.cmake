file(REMOVE_RECURSE
  "libtrustddl_nn.a"
)
