# Empty compiler generated dependencies file for trustddl_nn.
# This may be replaced when dependencies are built.
