file(REMOVE_RECURSE
  "CMakeFiles/trustddl_nn.dir/layers.cpp.o"
  "CMakeFiles/trustddl_nn.dir/layers.cpp.o.d"
  "CMakeFiles/trustddl_nn.dir/loss.cpp.o"
  "CMakeFiles/trustddl_nn.dir/loss.cpp.o.d"
  "CMakeFiles/trustddl_nn.dir/model.cpp.o"
  "CMakeFiles/trustddl_nn.dir/model.cpp.o.d"
  "CMakeFiles/trustddl_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/trustddl_nn.dir/model_zoo.cpp.o.d"
  "libtrustddl_nn.a"
  "libtrustddl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustddl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
