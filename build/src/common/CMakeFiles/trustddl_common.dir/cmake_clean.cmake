file(REMOVE_RECURSE
  "CMakeFiles/trustddl_common.dir/error.cpp.o"
  "CMakeFiles/trustddl_common.dir/error.cpp.o.d"
  "CMakeFiles/trustddl_common.dir/logging.cpp.o"
  "CMakeFiles/trustddl_common.dir/logging.cpp.o.d"
  "CMakeFiles/trustddl_common.dir/rng.cpp.o"
  "CMakeFiles/trustddl_common.dir/rng.cpp.o.d"
  "CMakeFiles/trustddl_common.dir/sha256.cpp.o"
  "CMakeFiles/trustddl_common.dir/sha256.cpp.o.d"
  "libtrustddl_common.a"
  "libtrustddl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustddl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
