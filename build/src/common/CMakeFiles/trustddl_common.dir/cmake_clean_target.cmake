file(REMOVE_RECURSE
  "libtrustddl_common.a"
)
