# Empty dependencies file for trustddl_common.
# This may be replaced when dependencies are built.
