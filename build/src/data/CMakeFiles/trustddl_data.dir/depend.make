# Empty dependencies file for trustddl_data.
# This may be replaced when dependencies are built.
