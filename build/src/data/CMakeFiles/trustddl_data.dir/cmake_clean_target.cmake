file(REMOVE_RECURSE
  "libtrustddl_data.a"
)
