
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/synthetic_mnist.cpp" "src/data/CMakeFiles/trustddl_data.dir/synthetic_mnist.cpp.o" "gcc" "src/data/CMakeFiles/trustddl_data.dir/synthetic_mnist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trustddl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/trustddl_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
