file(REMOVE_RECURSE
  "CMakeFiles/trustddl_data.dir/synthetic_mnist.cpp.o"
  "CMakeFiles/trustddl_data.dir/synthetic_mnist.cpp.o.d"
  "libtrustddl_data.a"
  "libtrustddl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustddl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
