file(REMOVE_RECURSE
  "libtrustddl_net.a"
)
