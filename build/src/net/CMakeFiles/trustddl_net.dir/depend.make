# Empty dependencies file for trustddl_net.
# This may be replaced when dependencies are built.
