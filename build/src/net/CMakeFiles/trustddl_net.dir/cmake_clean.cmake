file(REMOVE_RECURSE
  "CMakeFiles/trustddl_net.dir/network.cpp.o"
  "CMakeFiles/trustddl_net.dir/network.cpp.o.d"
  "CMakeFiles/trustddl_net.dir/runtime.cpp.o"
  "CMakeFiles/trustddl_net.dir/runtime.cpp.o.d"
  "libtrustddl_net.a"
  "libtrustddl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustddl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
