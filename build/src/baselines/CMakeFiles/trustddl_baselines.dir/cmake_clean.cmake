file(REMOVE_RECURSE
  "CMakeFiles/trustddl_baselines.dir/adapters.cpp.o"
  "CMakeFiles/trustddl_baselines.dir/adapters.cpp.o.d"
  "CMakeFiles/trustddl_baselines.dir/falcon/falcon.cpp.o"
  "CMakeFiles/trustddl_baselines.dir/falcon/falcon.cpp.o.d"
  "CMakeFiles/trustddl_baselines.dir/generic_net_helpers.cpp.o"
  "CMakeFiles/trustddl_baselines.dir/generic_net_helpers.cpp.o.d"
  "CMakeFiles/trustddl_baselines.dir/securenn/securenn.cpp.o"
  "CMakeFiles/trustddl_baselines.dir/securenn/securenn.cpp.o.d"
  "libtrustddl_baselines.a"
  "libtrustddl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustddl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
