# Empty compiler generated dependencies file for trustddl_baselines.
# This may be replaced when dependencies are built.
