file(REMOVE_RECURSE
  "libtrustddl_baselines.a"
)
