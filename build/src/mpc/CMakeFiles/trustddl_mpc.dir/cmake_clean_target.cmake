file(REMOVE_RECURSE
  "libtrustddl_mpc.a"
)
