
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpc/adversary.cpp" "src/mpc/CMakeFiles/trustddl_mpc.dir/adversary.cpp.o" "gcc" "src/mpc/CMakeFiles/trustddl_mpc.dir/adversary.cpp.o.d"
  "/root/repo/src/mpc/beaver.cpp" "src/mpc/CMakeFiles/trustddl_mpc.dir/beaver.cpp.o" "gcc" "src/mpc/CMakeFiles/trustddl_mpc.dir/beaver.cpp.o.d"
  "/root/repo/src/mpc/context.cpp" "src/mpc/CMakeFiles/trustddl_mpc.dir/context.cpp.o" "gcc" "src/mpc/CMakeFiles/trustddl_mpc.dir/context.cpp.o.d"
  "/root/repo/src/mpc/open.cpp" "src/mpc/CMakeFiles/trustddl_mpc.dir/open.cpp.o" "gcc" "src/mpc/CMakeFiles/trustddl_mpc.dir/open.cpp.o.d"
  "/root/repo/src/mpc/protocols_bt.cpp" "src/mpc/CMakeFiles/trustddl_mpc.dir/protocols_bt.cpp.o" "gcc" "src/mpc/CMakeFiles/trustddl_mpc.dir/protocols_bt.cpp.o.d"
  "/root/repo/src/mpc/protocols_hbc.cpp" "src/mpc/CMakeFiles/trustddl_mpc.dir/protocols_hbc.cpp.o" "gcc" "src/mpc/CMakeFiles/trustddl_mpc.dir/protocols_hbc.cpp.o.d"
  "/root/repo/src/mpc/robust_reconstruct.cpp" "src/mpc/CMakeFiles/trustddl_mpc.dir/robust_reconstruct.cpp.o" "gcc" "src/mpc/CMakeFiles/trustddl_mpc.dir/robust_reconstruct.cpp.o.d"
  "/root/repo/src/mpc/share_serde.cpp" "src/mpc/CMakeFiles/trustddl_mpc.dir/share_serde.cpp.o" "gcc" "src/mpc/CMakeFiles/trustddl_mpc.dir/share_serde.cpp.o.d"
  "/root/repo/src/mpc/sharing.cpp" "src/mpc/CMakeFiles/trustddl_mpc.dir/sharing.cpp.o" "gcc" "src/mpc/CMakeFiles/trustddl_mpc.dir/sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trustddl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/trustddl_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trustddl_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
