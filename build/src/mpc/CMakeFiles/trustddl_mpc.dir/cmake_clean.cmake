file(REMOVE_RECURSE
  "CMakeFiles/trustddl_mpc.dir/adversary.cpp.o"
  "CMakeFiles/trustddl_mpc.dir/adversary.cpp.o.d"
  "CMakeFiles/trustddl_mpc.dir/beaver.cpp.o"
  "CMakeFiles/trustddl_mpc.dir/beaver.cpp.o.d"
  "CMakeFiles/trustddl_mpc.dir/context.cpp.o"
  "CMakeFiles/trustddl_mpc.dir/context.cpp.o.d"
  "CMakeFiles/trustddl_mpc.dir/open.cpp.o"
  "CMakeFiles/trustddl_mpc.dir/open.cpp.o.d"
  "CMakeFiles/trustddl_mpc.dir/protocols_bt.cpp.o"
  "CMakeFiles/trustddl_mpc.dir/protocols_bt.cpp.o.d"
  "CMakeFiles/trustddl_mpc.dir/protocols_hbc.cpp.o"
  "CMakeFiles/trustddl_mpc.dir/protocols_hbc.cpp.o.d"
  "CMakeFiles/trustddl_mpc.dir/robust_reconstruct.cpp.o"
  "CMakeFiles/trustddl_mpc.dir/robust_reconstruct.cpp.o.d"
  "CMakeFiles/trustddl_mpc.dir/share_serde.cpp.o"
  "CMakeFiles/trustddl_mpc.dir/share_serde.cpp.o.d"
  "CMakeFiles/trustddl_mpc.dir/sharing.cpp.o"
  "CMakeFiles/trustddl_mpc.dir/sharing.cpp.o.d"
  "libtrustddl_mpc.a"
  "libtrustddl_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustddl_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
