# Empty dependencies file for trustddl_mpc.
# This may be replaced when dependencies are built.
