file(REMOVE_RECURSE
  "CMakeFiles/trustddl_core.dir/engine.cpp.o"
  "CMakeFiles/trustddl_core.dir/engine.cpp.o.d"
  "CMakeFiles/trustddl_core.dir/owner_link.cpp.o"
  "CMakeFiles/trustddl_core.dir/owner_link.cpp.o.d"
  "CMakeFiles/trustddl_core.dir/owner_service.cpp.o"
  "CMakeFiles/trustddl_core.dir/owner_service.cpp.o.d"
  "CMakeFiles/trustddl_core.dir/secure_model.cpp.o"
  "CMakeFiles/trustddl_core.dir/secure_model.cpp.o.d"
  "libtrustddl_core.a"
  "libtrustddl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustddl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
