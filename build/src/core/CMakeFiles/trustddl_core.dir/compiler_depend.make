# Empty compiler generated dependencies file for trustddl_core.
# This may be replaced when dependencies are built.
