file(REMOVE_RECURSE
  "libtrustddl_core.a"
)
