# Empty dependencies file for secure_training.
# This may be replaced when dependencies are built.
