file(REMOVE_RECURSE
  "CMakeFiles/secure_training.dir/secure_training.cpp.o"
  "CMakeFiles/secure_training.dir/secure_training.cpp.o.d"
  "secure_training"
  "secure_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
