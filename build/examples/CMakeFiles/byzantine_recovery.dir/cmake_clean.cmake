file(REMOVE_RECURSE
  "CMakeFiles/byzantine_recovery.dir/byzantine_recovery.cpp.o"
  "CMakeFiles/byzantine_recovery.dir/byzantine_recovery.cpp.o.d"
  "byzantine_recovery"
  "byzantine_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
