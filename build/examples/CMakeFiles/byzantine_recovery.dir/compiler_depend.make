# Empty compiler generated dependencies file for byzantine_recovery.
# This may be replaced when dependencies are built.
