file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_protocols.dir/bench_micro_protocols.cpp.o"
  "CMakeFiles/bench_micro_protocols.dir/bench_micro_protocols.cpp.o.d"
  "bench_micro_protocols"
  "bench_micro_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
