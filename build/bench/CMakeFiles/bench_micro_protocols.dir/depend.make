# Empty dependencies file for bench_micro_protocols.
# This may be replaced when dependencies are built.
